"""Experiment definitions reproducing the paper's evaluation.

One function per paper artifact (see DESIGN.md section 5 for the index):

=============  =======================================================
``fig6_accuracy``        Fig. 6(a)/(b): range-sum accuracy vs window
                         length, histogram vs wavelet vs exact.
``fig6_time``            Fig. 6(c)/(d): incremental maintenance time
                         vs window length (plus the wavelet per-slide
                         recomputation the paper "omits" for being an
                         order of magnitude worse).
``agglomerative_vs_wavelet``  Section 5.2, experiment 1.
``agglomerative_vs_optimal``  Section 5.2, experiment 2 (warehouse).
``similarity_whole`` /
``similarity_subsequence``    Section 5.2, experiment 3 (vs APCA).
``epsilon_ablation``     Paper claim: graceful accuracy/time tradeoff.
``scaling_ablation``     Theorem 1 vs the naive per-arrival DP and the
                         restart-agglomerative strawman of section 4.4.
``interval_growth_ablation``  The O((1/delta) log n) interval bound.
=============  =======================================================

Every function takes explicit scale parameters (tests run them tiny,
benchmarks at report scale) and returns a
:class:`~repro.bench.harness.ResultTable`.
"""

from __future__ import annotations

import numpy as np

from ..core.agglomerative import AgglomerativeHistogramBuilder
from ..core.approx import approximate_histogram
from ..core.fixed_window import FixedWindowHistogramBuilder
from ..core.optimal import optimal_error, optimal_histogram
from ..datasets import att_utilization_stream, timeseries_collection, warehouse_measure_column
from ..query.accuracy import measure_accuracy
from ..query.engine import ExactMaintainer, HistogramMaintainer, StreamQueryEngine, WaveletMaintainer
from ..query.workload import RandomRangeWorkload
from ..runtime import FixedWindowMaintainer, StreamPipeline, make_maintainer
from ..similarity.features import APCAReducer, PAAReducer, VOptimalReducer
from ..similarity.index import SeriesIndex
from ..similarity.subsequence import SubsequenceIndex
from ..warehouse.aqp import AttributeSummary
from ..warehouse.table import Relation
from ..wavelets.synopsis import WaveletSynopsis
from .harness import ResultTable
from .timing import Stopwatch, time_call

__all__ = [
    "fig6_accuracy",
    "fig6_time",
    "agglomerative_vs_wavelet",
    "agglomerative_vs_optimal",
    "similarity_whole",
    "similarity_subsequence",
    "epsilon_ablation",
    "scaling_ablation",
    "interval_growth_ablation",
    "aggregate_variants",
    "heuristic_quality",
    "change_detection",
    "span_breakdown",
    "space_accuracy_sweep",
    "maintenance_cadence",
    "workload_aware",
]


def fig6_accuracy(
    epsilon: float,
    window_sizes: tuple[int, ...] = (128, 256, 512, 1024),
    bucket_counts: tuple[int, ...] = (8, 16),
    stream_extra: int = 1024,
    evaluations: int = 8,
    queries_per_evaluation: int = 32,
    seed: int = 7,
) -> ResultTable:
    """Fig. 6(a)/(b): average range-sum error vs subsequence length.

    For each (window length, bucket count) the utilization stream is run
    through three synopses -- the fixed-window histogram, an equal-space
    wavelet synopsis recomputed from the buffer, and the exact buffer --
    and scored on uniformly random range-sum queries.
    """
    table = ResultTable(
        f"Fig6 accuracy (eps={epsilon:g}): avg |range-sum error| on random queries",
        ["window", "buckets", "exact", "histogram", "wavelet"],
    )
    for window in window_sizes:
        stream = att_utilization_stream(window + stream_extra, seed=seed)
        for buckets in bucket_counts:
            engine = StreamQueryEngine(
                window_size=window,
                maintain_every=max(1, stream_extra),  # synopses refresh at query time
                evaluate_every=max(1, stream_extra // evaluations),
                queries_per_evaluation=queries_per_evaluation,
                seed=seed,
            )
            maintainers = [
                ExactMaintainer(window),
                HistogramMaintainer(window, buckets, epsilon),
                WaveletMaintainer(window, buckets),
            ]
            reports = engine.run(stream, maintainers)
            table.add_row(
                window=window,
                buckets=buckets,
                exact=reports[0].mean_absolute_error,
                histogram=reports[1].mean_absolute_error,
                wavelet=reports[2].mean_absolute_error,
            )
    return table


def fig6_time(
    epsilon: float,
    window_sizes: tuple[int, ...] = (128, 256, 512, 1024),
    bucket_counts: tuple[int, ...] = (8, 16),
    arrivals: int = 100,
    seed: int = 7,
) -> ResultTable:
    """Fig. 6(c)/(d): per-arrival maintenance cost vs subsequence length.

    The histogram is rebuilt after every arrival (the paper's incremental
    model); the wavelet synopsis is recomputed from scratch per slide, as
    the paper's baseline does.  Times are milliseconds per arrival.
    """
    table = ResultTable(
        f"Fig6 time (eps={epsilon:g}): maintenance ms per arrival",
        ["window", "buckets", "histogram_ms", "wavelet_ms", "herror_evals"],
    )
    for window in window_sizes:
        stream = att_utilization_stream(window + arrivals, seed=seed)
        for buckets in bucket_counts:
            histogram = HistogramMaintainer(window, buckets, epsilon)
            wavelet = WaveletMaintainer(window, buckets)
            for maintainer in (histogram, wavelet):
                maintainer.extend(stream[:window])
                maintainer.maintain()
            warm_evals = histogram.stats().herror_evaluations
            # Rebuild after every arrival: the paper's incremental model.
            reports = StreamPipeline(
                [histogram, wavelet], maintain_every=1
            ).run(stream[window:])
            evals = histogram.stats().herror_evaluations - warm_evals
            table.add_row(
                window=window,
                buckets=buckets,
                histogram_ms=1e3 * reports[0].maintenance_seconds / arrivals,
                wavelet_ms=1e3 * reports[1].maintenance_seconds / arrivals,
                herror_evals=evals // arrivals,
            )
    return table


def agglomerative_vs_wavelet(
    stream_length: int = 20_000,
    bucket_counts: tuple[int, ...] = (8, 16, 32),
    epsilon: float = 0.1,
    queries: int = 200,
    seed: int = 7,
) -> ResultTable:
    """Section 5.2 exp. 1: whole-prefix histogram vs wavelet synopsis.

    The agglomerative builder consumes the stream one point at a time; the
    wavelet synopsis is granted the materialized array (an offline luxury).
    Accuracy is the average absolute error of random range-sum queries
    over the full prefix.
    """
    table = ResultTable(
        f"Agglomerative vs wavelet (n={stream_length}, eps={epsilon:g})",
        ["buckets", "agg_err", "wav_err", "agg_seconds", "wav_seconds"],
    )
    stream = att_utilization_stream(stream_length, seed=seed)
    workload = RandomRangeWorkload(stream_length, seed=seed).sample(queries)
    for buckets in bucket_counts:
        builder = AgglomerativeHistogramBuilder(buckets, epsilon)
        _, agg_seconds = time_call(lambda: builder.extend(stream))
        histogram = builder.histogram()
        synopsis, wav_seconds = time_call(
            lambda: WaveletSynopsis.from_values(stream, buckets)
        )
        agg = measure_accuracy(histogram, stream, workload)
        wav = measure_accuracy(synopsis, stream, workload)
        table.add_row(
            buckets=buckets,
            agg_err=agg.mean_absolute_error,
            wav_err=wav.mean_absolute_error,
            agg_seconds=agg_seconds,
            wav_seconds=wav_seconds,
        )
    return table


def agglomerative_vs_optimal(
    domains: tuple[int, ...] = (512, 1024, 2048, 4096),
    rows_per_domain: int = 50_000,
    num_buckets: int = 32,
    epsilon: float = 0.1,
    queries: int = 100,
    seed: int = 7,
) -> ResultTable:
    """Section 5.2 exp. 2: one-pass vs optimal construction in a warehouse.

    For growing attribute domains (= frequency-vector lengths n), build a
    B-bucket summary with the quadratic optimal DP and with the one-pass
    agglomerative algorithm; compare construction time and the average
    absolute error of random range-count queries.  The paper's finding:
    comparable accuracy, with time savings that grow with n.
    """
    table = ResultTable(
        f"Agglomerative vs optimal (B={num_buckets}, eps={epsilon:g})",
        ["domain", "t_optimal_s", "t_approx_s", "speedup", "err_optimal", "err_approx"],
    )
    rng = np.random.default_rng(seed)
    for domain in domains:
        column = warehouse_measure_column(rows_per_domain, seed=seed, domain=domain)
        relation = Relation({"usage": column})
        optimal, t_optimal = time_call(
            lambda: AttributeSummary.build(
                relation, "usage", num_buckets, method="optimal"
            )
        )
        approx, t_approx = time_call(
            lambda: AttributeSummary.build(
                relation, "usage", num_buckets, method="approximate", epsilon=epsilon
            )
        )
        err_optimal = 0.0
        err_approx = 0.0
        for _ in range(queries):
            low = float(rng.integers(0, domain))
            high = low + float(rng.integers(1, max(2, domain // 2)))
            exact = relation.count_range("usage", low, high)
            err_optimal += abs(optimal.estimate_count(low, high) - exact)
            err_approx += abs(approx.estimate_count(low, high) - exact)
        table.add_row(
            domain=domain,
            t_optimal_s=t_optimal,
            t_approx_s=t_approx,
            speedup=t_optimal / t_approx if t_approx > 0 else float("inf"),
            err_optimal=err_optimal / queries,
            err_approx=err_approx / queries,
        )
    return table


def _similarity_queries(collection: np.ndarray, count: int, seed: int) -> np.ndarray:
    """Perturbed members of the collection, so neighbours exist."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, collection.shape[0], size=count)
    noise = rng.normal(0.0, 0.05, size=(count, collection.shape[1]))
    return collection[picks] + noise


def similarity_whole(
    count: int = 200,
    length: int = 256,
    budget: int = 16,
    epsilon: float = 0.1,
    num_queries: int = 20,
    k: int = 10,
    seed: int = 7,
) -> ResultTable:
    """Section 5.2 exp. 3 (whole matching): false positives vs APCA.

    Equal number budget per series; k-NN searches over a family-structured
    collection.  Lower false positives = tighter representation.
    """
    table = ResultTable(
        f"Whole-series kNN (N={count}, len={length}, budget={budget}, k={k})",
        ["method", "false_positives", "verified", "pruned_fraction"],
    )
    collection = timeseries_collection(count, length, seed=seed)
    queries = _similarity_queries(collection, num_queries, seed + 1)
    reducers = [
        VOptimalReducer(budget),
        VOptimalReducer(budget, epsilon=epsilon),
        APCAReducer(budget),
        PAAReducer(budget),
    ]
    for reducer in reducers:
        index = SeriesIndex(reducer)
        index.add_all(collection)
        false_positives = 0
        verified = 0
        pruned = 0
        for query in queries:
            outcome = index.knn_search(query, k)
            false_positives += outcome.false_positives
            verified += outcome.candidates_verified
            pruned += outcome.pruned
        table.add_row(
            method=reducer.name,
            false_positives=false_positives,
            verified=verified,
            pruned_fraction=pruned / (num_queries * count),
        )
    return table


def similarity_subsequence(
    stream_length: int = 8192,
    window_length: int = 256,
    budget: int = 16,
    epsilon: float = 0.1,
    stride: int = 16,
    num_queries: int = 10,
    radius_scale: float = 1.0,
    seed: int = 7,
) -> ResultTable:
    """Section 5.2 exp. 3 (subsequence matching): false positives vs APCA.

    The V-optimal index is built incrementally with the fixed-window
    builder (the streaming construction the paper enables); APCA and PAA
    re-reduce each window offline.  Range searches use a radius scaled to
    the typical window norm so match sets are non-trivial.
    """
    table = ResultTable(
        f"Subsequence search (len={stream_length}, window={window_length}, "
        f"budget={budget})",
        ["method", "false_positives", "verified", "matches"],
    )
    stream = att_utilization_stream(stream_length, seed=seed)
    rng = np.random.default_rng(seed + 1)
    offsets = rng.integers(0, stream_length - window_length, size=num_queries)
    patterns = [
        stream[o : o + window_length]
        + rng.normal(0.0, 1.0, size=window_length)
        for o in offsets
    ]
    typical = float(np.std(stream)) * np.sqrt(window_length)
    radius = radius_scale * 0.5 * typical

    indexes = {
        f"vopt-stream(B={budget // 2}, eps={epsilon:g})": SubsequenceIndex.from_stream_builder(
            stream, window_length, budget // 2, epsilon, stride=stride
        ),
        APCAReducer(budget).name: SubsequenceIndex(
            stream, window_length, APCAReducer(budget), stride=stride
        ),
        PAAReducer(budget).name: SubsequenceIndex(
            stream, window_length, PAAReducer(budget), stride=stride
        ),
    }
    for name, index in indexes.items():
        false_positives = 0
        verified = 0
        matches = 0
        for pattern in patterns:
            outcome = index.range_search(pattern, radius)
            false_positives += outcome.false_positives
            verified += outcome.candidates_verified
            matches += len(outcome.matches)
        table.add_row(
            method=name, false_positives=false_positives, verified=verified,
            matches=matches,
        )
    return table


def epsilon_ablation(
    window: int = 512,
    num_buckets: int = 8,
    epsilons: tuple[float, ...] = (1.0, 0.5, 0.2, 0.1, 0.05),
    arrivals: int = 50,
    seed: int = 7,
) -> ResultTable:
    """The accuracy/speed dial: SSE ratio to optimal and cost vs epsilon."""
    table = ResultTable(
        f"Epsilon ablation (window={window}, B={num_buckets})",
        ["epsilon", "sse_ratio", "ms_per_arrival", "intervals_per_level"],
    )
    stream = att_utilization_stream(window + arrivals, seed=seed)
    final_window = stream[arrivals : window + arrivals]
    optimal = optimal_error(final_window, num_buckets)
    for epsilon in epsilons:
        maintainer = make_maintainer(
            "fixed_window",
            window_size=window,
            num_buckets=num_buckets,
            epsilon=epsilon,
        )
        maintainer.extend(stream[:window])
        maintainer.maintain()
        report = StreamPipeline([maintainer], maintain_every=1).run(
            stream[window:]
        )[0]
        builder = maintainer.builder
        sse = builder.error_estimate
        table.add_row(
            epsilon=epsilon,
            sse_ratio=sse / optimal if optimal > 0 else 1.0,
            ms_per_arrival=1e3 * report.maintenance_seconds / arrivals,
            intervals_per_level=int(
                np.mean(builder.last_stats.intervals_per_level)
            ),
        )
    return table


def scaling_ablation(
    window_sizes: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    num_buckets: int = 8,
    epsilon: float = 0.25,
    arrivals: int = 20,
    max_dp_window: int = 1024,
    seed: int = 7,
) -> ResultTable:
    """Theorem 1's shape: per-arrival cost of the fixed-window algorithm vs
    the naive optimal-DP-per-arrival and the restart-agglomerative
    strawman (section 4.4).

    ``herror_evals`` is the hardware-independent operation count; the DP
    is skipped above ``max_dp_window`` (it is quadratic).
    """
    table = ResultTable(
        f"Scaling ablation (B={num_buckets}, eps={epsilon:g})",
        ["window", "fw_ms", "herror_evals", "dp_ms", "restart_agg_ms"],
    )
    for window in window_sizes:
        stream = att_utilization_stream(window + arrivals, seed=seed)
        maintainer = make_maintainer(
            "fixed_window",
            window_size=window,
            num_buckets=num_buckets,
            epsilon=epsilon,
        )
        maintainer.extend(stream[:window])
        maintainer.maintain()
        warm_evals = maintainer.stats().herror_evaluations
        report = StreamPipeline([maintainer], maintain_every=1).run(
            stream[window:]
        )[0]
        evals = maintainer.stats().herror_evaluations - warm_evals
        fw_ms = 1e3 * report.maintenance_seconds / arrivals

        dp_ms = float("nan")
        if window <= max_dp_window:
            dp_watch = Stopwatch()
            for shift in range(arrivals):
                current = stream[shift + 1 : shift + 1 + window]
                with dp_watch:
                    optimal_histogram(current, num_buckets)
            dp_ms = 1e3 * dp_watch.elapsed / arrivals

        restart_watch = Stopwatch()
        for shift in range(arrivals):
            current = stream[shift + 1 : shift + 1 + window]
            with restart_watch:
                approximate_histogram(current, num_buckets, epsilon)
        restart_ms = 1e3 * restart_watch.elapsed / arrivals

        table.add_row(
            window=window,
            fw_ms=fw_ms,
            herror_evals=evals // arrivals,
            dp_ms=dp_ms,
            restart_agg_ms=restart_ms,
        )
    return table


def workload_aware(
    window: int = 512,
    num_buckets: int = 8,
    hot_fraction: float = 0.25,
    queries: int = 200,
    seed: int = 7,
) -> ResultTable:
    """Extension: workload-aware V-optimal histograms.

    When the query workload concentrates on a hot region (here the most
    recent ``hot_fraction`` of the window, the natural skew of monitoring
    workloads), weighting the construction objective by per-position
    access frequency (``WeightedSSEMetric``) moves buckets to where the
    queries land.  Reported: avg |error| on the hot workload and on a
    uniform control workload, for the plain and the workload-aware
    histogram.
    """
    from ..core.errors import WeightedSSEMetric
    from ..query.queries import RangeQuery
    from ..query.workload import position_weights

    table = ResultTable(
        f"Workload-aware histograms (window={window}, B={num_buckets})",
        ["histogram", "hot_workload_err", "uniform_workload_err"],
    )
    values = att_utilization_stream(window, seed=seed)
    rng = np.random.default_rng(seed)
    hot_start = int(window * (1.0 - hot_fraction))
    hot_queries = []
    for _ in range(queries):
        start = int(rng.integers(hot_start, window))
        end = min(window - 1, start + int(rng.integers(1, window - hot_start)))
        hot_queries.append(RangeQuery(start, end))
    uniform_queries = RandomRangeWorkload(window, seed=seed + 1).sample(queries)

    plain = optimal_histogram(values, num_buckets)
    weights = position_weights(hot_queries, window)
    aware = optimal_histogram(
        values, num_buckets, metric=WeightedSSEMetric(values, weights)
    )
    for name, histogram in (("plain", plain), ("workload-aware", aware)):
        table.add_row(
            histogram=name,
            hot_workload_err=measure_accuracy(
                histogram, values, hot_queries
            ).mean_absolute_error,
            uniform_workload_err=measure_accuracy(
                histogram, values, uniform_queries
            ).mean_absolute_error,
        )
    return table


def maintenance_cadence(
    window: int = 512,
    num_buckets: int = 8,
    epsilon: float = 0.25,
    cadences: tuple[int, ...] = (1, 4, 16, 64),
    arrivals: int = 256,
    queries_per_checkpoint: int = 16,
    seed: int = 7,
) -> ResultTable:
    """Cost vs staleness of lazy maintenance (paper section 3, footnote 2).

    The paper's model rebuilds after every arrival; batched arrivals fit
    the same framework.  Rebuilding every ``c`` arrivals divides the
    maintenance cost by ~c but answers queries from a synopsis up to
    ``c - 1`` points stale.  This sweep measures both sides of the dial:
    milliseconds per arrival and the accuracy of range-sum queries
    answered from the (possibly stale) synopsis against the *live* window.
    """
    table = ResultTable(
        f"Maintenance cadence (window={window}, B={num_buckets}, eps={epsilon:g})",
        ["cadence", "ms_per_arrival", "stale_query_err"],
    )
    stream = att_utilization_stream(window + arrivals, seed=seed)
    for cadence in cadences:
        maintainer = FixedWindowMaintainer(
            window, num_buckets, epsilon, cache_synopsis=True
        )
        maintainer.extend(stream[:window])
        maintainer.maintain()
        workload = RandomRangeWorkload(window, seed=seed)
        error = {"total": 0.0, "count": 0}

        def score(arrivals_seen: int, pipeline: StreamPipeline) -> None:
            histogram = maintainer.last_synopsis()  # stale by up to c - 1
            live = maintainer.window_values()
            for query in workload.sample(queries_per_checkpoint):
                exact = float(live[query.start : query.end + 1].sum())
                error["total"] += abs(query.answer(histogram) - exact)
                error["count"] += 1

        report = StreamPipeline(
            [maintainer],
            maintain_every=cadence,
            # Evaluate at a prime stride so checkpoints do not line up with
            # any cadence (staleness would otherwise be invisible).
            checkpoint_every=37,
            on_checkpoint=score,
        ).run(stream[window:])[0]
        table.add_row(
            cadence=cadence,
            ms_per_arrival=1e3 * report.maintenance_seconds / arrivals,
            stale_query_err=error["total"] / max(1, error["count"]),
        )
    return table


def space_accuracy_sweep(
    length: int = 2048,
    budgets: tuple[int, ...] = (4, 8, 16, 32, 64),
    epsilon: float = 0.1,
    seed: int = 7,
) -> ResultTable:
    """Error vs space for every synopsis family (the classic tradeoff).

    One utilization sequence, SSE normalized by the optimal SSE at each
    bucket budget B; methods at equal space (B buckets or B wavelet
    coefficients).  The guaranteed one-pass approximation should track
    1.0 across the sweep while heuristics wander.
    """
    from ..heuristics.iterative import iterative_histogram
    from ..heuristics.sampled import sampled_histogram
    from ..heuristics.serial import equal_width_histogram, maxdiff_histogram

    table = ResultTable(
        f"Space/accuracy sweep (n={length}): SSE / optimal SSE",
        ["buckets", "approx", "iterative", "sampled", "maxdiff",
         "equal_width", "wavelet"],
    )
    values = att_utilization_stream(length, seed=seed)
    for buckets in budgets:
        optimum = optimal_error(values, buckets)
        if optimum <= 0:
            continue
        table.add_row(
            buckets=buckets,
            approx=approximate_histogram(values, buckets, epsilon).sse(values)
            / optimum,
            iterative=iterative_histogram(values, buckets).sse(values) / optimum,
            sampled=sampled_histogram(values, buckets, seed=seed).sse(values)
            / optimum,
            maxdiff=maxdiff_histogram(values, buckets).sse(values) / optimum,
            equal_width=equal_width_histogram(values, buckets).sse(values)
            / optimum,
            wavelet=WaveletSynopsis.from_values(values, buckets).sse(values)
            / optimum,
        )
    return table


def span_breakdown(
    window: int = 512,
    num_buckets: int = 12,
    epsilon: float = 0.2,
    queries_per_band: int = 100,
    bands: tuple[tuple[int, int], ...] = ((1, 8), (8, 64), (64, 256), (256, 512)),
    seed: int = 7,
) -> ResultTable:
    """How range-sum error depends on the query span.

    The paper draws spans uniformly; this breakdown separates the bands.
    Short ranges are hardest for any piecewise-constant synopsis (a single
    straddled bucket dominates); long ranges benefit from error
    cancellation across buckets.  The histogram-vs-wavelet ordering should
    hold in every band.
    """
    from ..query.queries import RangeQuery

    table = ResultTable(
        f"Span breakdown (window={window}, B={num_buckets}, eps={epsilon:g})",
        ["span_band", "histogram_err", "wavelet_err"],
    )
    stream = att_utilization_stream(window, seed=seed)
    builder = FixedWindowHistogramBuilder(window, num_buckets, epsilon)
    builder.extend(stream)
    histogram = builder.histogram()
    synopsis = WaveletSynopsis.from_values(stream, num_buckets)
    rng = np.random.default_rng(seed)
    for low_span, high_span in bands:
        high_span = min(high_span, window)
        queries = []
        for _ in range(queries_per_band):
            span = int(rng.integers(low_span, high_span + 1))
            start = int(rng.integers(0, window - span + 1))
            queries.append(RangeQuery(start, start + span - 1))
        histogram_accuracy = measure_accuracy(histogram, stream, queries)
        wavelet_accuracy = measure_accuracy(synopsis, stream, queries)
        table.add_row(
            span_band=f"[{low_span},{high_span}]",
            histogram_err=histogram_accuracy.mean_absolute_error,
            wavelet_err=wavelet_accuracy.mean_absolute_error,
        )
    return table


def change_detection(
    window_sizes: tuple[int, ...] = (64, 128, 256),
    num_changes: int = 6,
    segment_length: int = 1200,
    num_buckets: int = 8,
    epsilon: float = 0.25,
    seed: int = 7,
) -> ResultTable:
    """Mining extension (paper section 6): change detection quality.

    A stream with ``num_changes`` injected regime changes is monitored by
    the histogram change detector at several window sizes; we report
    recall (changes caught within window + slack), mean detection delay,
    and spurious events per 1000 points.
    """
    from ..mining.changepoint import HistogramChangeDetector

    table = ResultTable(
        f"Change detection (B={num_buckets}, eps={epsilon:g})",
        ["window", "recall", "mean_delay", "spurious_per_1k"],
    )
    rng = np.random.default_rng(seed)
    levels = rng.uniform(100.0, 800.0, size=num_changes + 1)
    # Keep consecutive regimes well separated.
    for i in range(1, levels.size):
        if abs(levels[i] - levels[i - 1]) < 150.0:
            levels[i] = levels[i - 1] + 250.0
    stream = np.concatenate(
        [rng.normal(level, 8.0, segment_length).round() for level in levels]
    )
    true_changes = np.arange(1, num_changes + 1) * segment_length

    for window in window_sizes:
        detector = HistogramChangeDetector(
            window, num_buckets=num_buckets, epsilon=epsilon,
            check_every=16, cooldown=window * 3,
        )
        events = detector.run(stream)
        slack = window + 64
        caught = set()
        delays = []
        spurious = 0
        for event in events:
            gaps = event.position - true_changes
            matching = [
                i for i, gap in enumerate(gaps) if 0 <= gap <= slack
            ]
            if matching:
                index = matching[0]
                if index not in caught:
                    caught.add(index)
                    delays.append(int(gaps[index]))
            else:
                spurious += 1
        table.add_row(
            window=window,
            recall=len(caught) / num_changes,
            mean_delay=float(np.mean(delays)) if delays else float("nan"),
            spurious_per_1k=1000.0 * spurious / stream.size,
        )
    return table


def aggregate_variants(
    window: int = 512,
    num_buckets: int = 12,
    epsilon: float = 0.2,
    queries: int = 200,
    seed: int = 7,
) -> ResultTable:
    """Section 5.1's aside: "similar results are obtained for range queries
    requesting average or point queries."

    One window, three query families (range-sum, range-avg, point), mean
    relative error of the fixed-window histogram vs the equal-space
    wavelet synopsis.
    """
    from ..query.workload import RandomPointWorkload

    table = ResultTable(
        f"Aggregate variants (window={window}, B={num_buckets}, eps={epsilon:g})",
        ["aggregate", "histogram_rel_err", "wavelet_rel_err"],
    )
    stream = att_utilization_stream(window, seed=seed)
    builder = FixedWindowHistogramBuilder(window, num_buckets, epsilon)
    builder.extend(stream)
    histogram = builder.histogram()
    synopsis = WaveletSynopsis.from_values(stream, num_buckets)

    workloads = {
        "range_sum": RandomRangeWorkload(window, aggregate="sum", seed=seed).sample(queries),
        "range_avg": RandomRangeWorkload(window, aggregate="avg", seed=seed).sample(queries),
        "point": RandomPointWorkload(window, seed=seed).sample(queries),
    }
    for name, workload in workloads.items():
        histogram_accuracy = measure_accuracy(histogram, stream, workload)
        wavelet_accuracy = measure_accuracy(synopsis, stream, workload)
        table.add_row(
            aggregate=name,
            histogram_rel_err=histogram_accuracy.mean_relative_error,
            wavelet_rel_err=wavelet_accuracy.mean_relative_error,
        )
    return table


def heuristic_quality(
    lengths: tuple[int, ...] = (256, 1024),
    num_buckets: int = 16,
    epsilon: float = 0.1,
    seed: int = 7,
) -> ResultTable:
    """Ablation: why V-optimality matters -- SSE ratio to optimal for the
    classic heuristics vs the paper's (1 + eps)-approximation."""
    from ..heuristics.serial import equal_width_histogram, maxdiff_histogram
    from ..similarity.apca import apca as apca_reduce

    table = ResultTable(
        f"Heuristic quality (B={num_buckets}): SSE / optimal SSE",
        ["length", "approx", "maxdiff", "equal_width", "apca"],
    )
    for length in lengths:
        values = att_utilization_stream(length, seed=seed)
        optimum = optimal_error(values, num_buckets)
        if optimum <= 0:
            continue
        table.add_row(
            length=length,
            approx=approximate_histogram(values, num_buckets, epsilon).sse(values)
            / optimum,
            maxdiff=maxdiff_histogram(values, num_buckets).sse(values) / optimum,
            equal_width=equal_width_histogram(values, num_buckets).sse(values)
            / optimum,
            apca=apca_reduce(values, num_buckets).sse(values) / optimum,
        )
    return table


def interval_growth_ablation(
    window_sizes: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096),
    num_buckets: int = 8,
    epsilons: tuple[float, ...] = (0.5, 0.25, 0.1),
    seed: int = 7,
) -> ResultTable:
    """The O((1/delta) log n) interval bound (section 4.5 analysis)."""
    table = ResultTable(
        f"Interval growth (B={num_buckets})",
        ["window", "epsilon", "mean_intervals", "bound_fraction"],
    )
    for window in window_sizes:
        stream = att_utilization_stream(window, seed=seed)
        for epsilon in epsilons:
            builder = FixedWindowHistogramBuilder(window, num_buckets, epsilon)
            builder.extend(stream)
            counts = builder.interval_counts()
            mean_intervals = float(np.mean(counts))
            delta = epsilon / (2.0 * num_buckets)
            bound = np.log(max(np.e, builder.herror_estimate + 2)) / delta + 1
            table.add_row(
                window=window,
                epsilon=epsilon,
                mean_intervals=mean_intervals,
                bound_fraction=mean_intervals / min(window, bound),
            )
    return table
