"""Small timing helpers for the experiment harness.

Both helpers accept an injectable ``clock`` (any zero-argument callable
returning seconds) so benchmark plumbing can be tested deterministically
against a fake clock; the default is ``time.perf_counter``.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["time_call", "Stopwatch"]


def time_call(
    fn: Callable[[], Any],
    *,
    clock: Callable[[], float] = time.perf_counter,
) -> tuple[Any, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    started = clock()
    result = fn()
    return result, clock() - started


class Stopwatch:
    """Accumulating stopwatch, usable as a context manager.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0
    True
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.elapsed = 0.0
        self._clock = clock
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.elapsed += self._clock() - self._started
        self._started = None
