"""Small timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["time_call", "Stopwatch"]


def time_call(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


class Stopwatch:
    """Accumulating stopwatch, usable as a context manager.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.elapsed += time.perf_counter() - self._started
        self._started = None
