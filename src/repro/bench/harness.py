"""Result tables for the experiment harness.

Every experiment in :mod:`repro.bench.experiments` returns a
:class:`ResultTable`: named columns, typed rows, and a fixed-width text
rendering that mirrors how the paper reports its series (one row per
parameter setting, one column per compared method).  Tables can be
serialized to simple TSV for archival in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["ResultTable"]


class ResultTable:
    """An ordered collection of homogeneous result rows."""

    def __init__(self, title: str, columns: Iterable[str]) -> None:
        self.title = title
        self.columns = list(columns)
        if not self.columns:
            raise ValueError("a result table needs at least one column")
        self._rows: list[dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns {sorted(unknown)}")
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"missing columns {sorted(missing)}")
        self._rows.append(dict(values))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def rows(self) -> list[dict[str, Any]]:
        return [dict(row) for row in self._rows]

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}")
        return [row[name] for row in self._rows]

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e6 or abs(value) < 1e-3:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering, paper-table style."""
        cells = [[self._format(row[c]) for c in self.columns] for row in self._rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_tsv(self) -> str:
        lines = ["\t".join(self.columns)]
        for row in self._rows:
            lines.append("\t".join(self._format(row[c]) for c in self.columns))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
