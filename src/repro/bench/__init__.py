"""Experiment harness regenerating every figure/table of the paper."""

from .experiments import (
    agglomerative_vs_optimal,
    agglomerative_vs_wavelet,
    aggregate_variants,
    change_detection,
    epsilon_ablation,
    fig6_accuracy,
    fig6_time,
    heuristic_quality,
    interval_growth_ablation,
    maintenance_cadence,
    scaling_ablation,
    similarity_subsequence,
    similarity_whole,
    space_accuracy_sweep,
    span_breakdown,
    workload_aware,
)
from .harness import ResultTable
from .timing import Stopwatch, time_call

__all__ = [
    "ResultTable",
    "Stopwatch",
    "agglomerative_vs_optimal",
    "agglomerative_vs_wavelet",
    "aggregate_variants",
    "change_detection",
    "epsilon_ablation",
    "fig6_accuracy",
    "fig6_time",
    "heuristic_quality",
    "interval_growth_ablation",
    "maintenance_cadence",
    "scaling_ablation",
    "similarity_subsequence",
    "similarity_whole",
    "space_accuracy_sweep",
    "span_breakdown",
    "time_call",
    "workload_aware",
]
