"""``python -m repro.verify`` -- the certification CLI.

Sweeps registry backends x fuzzing profiles x parameter grids through
the differential checker and prints a certification report.  Exits
non-zero if any backend violates its guarantee, so the command doubles
as a CI gate::

    python -m repro.verify --quick             # every registry backend, < 2 min
    python -m repro.verify                     # full profile/param sweep
    python -m repro.verify --backend wavelet --profile spike --points 4096
    python -m repro.verify --quick --out report.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .fuzzer import PROFILES
from .runner import GRID_BACKENDS, certify, default_grid


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Certify synopsis backends against exact oracles.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="baseline config per backend over the quick profile set (CI gate)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=sorted(GRID_BACKENDS),
        help="restrict to this backend (repeatable; default: all)",
    )
    parser.add_argument(
        "--profile",
        action="append",
        choices=PROFILES,
        help="restrict to this fuzzing profile (repeatable)",
    )
    parser.add_argument(
        "--points", type=int, default=None, help="stream length per case"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base fuzzing seed (default 0)"
    )
    parser.add_argument(
        "--out", type=str, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the selected grid and exit without running",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.points is not None and args.points < 1:
        print("error: --points must be >= 1", file=sys.stderr)
        return 2
    cases = default_grid(
        quick=args.quick,
        backends=args.backend,
        profiles=args.profile,
        points=args.points,
        seed=args.seed,
    )
    if args.list:
        for case in cases:
            print(f"{case.label()}  points={case.points} params={case.params}")
        print(f"{len(cases)} cases")
        return 0

    def progress(result) -> None:
        status = "ok" if result.passed else "FAIL"
        print(f"  {result.backend}/{result.profile} ... {status}", flush=True)

    print(f"certifying {len(cases)} cases", flush=True)
    report = certify(cases, progress=progress)
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.out}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
