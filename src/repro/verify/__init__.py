"""Differential-oracle and metamorphic certification of synopsis backends.

The subsystem has three pillars:

* :mod:`repro.verify.oracles` -- exact reference implementations (the
  O(n^2 B) V-optimal DP, exact sliding-window sums and quantiles, exact
  Haar transforms) behind the uniform :class:`Oracle` protocol;
* :mod:`repro.verify.differential` -- :class:`DifferentialChecker`
  drives any registry backend and its oracle in lockstep over a seeded
  :class:`StreamFuzzer`, auditing epsilon bounds plus the batch-split
  and checkpoint/restore metamorphic equivalences;
* :mod:`repro.verify.runner` -- grid sweeps producing a JSON
  :class:`CertificationReport`, exposed as ``python -m repro.verify``.
"""

from .differential import DifferentialChecker, DifferentialResult, observe
from .fuzzer import PROFILES, SIGNED_PROFILES, StreamFuzzer
from .oracles import Oracle, Violation, oracle_for
from .runner import (
    GRID_BACKENDS,
    CertificationCase,
    CertificationReport,
    certify,
    compatible_profiles,
    default_grid,
)

__all__ = [
    "CertificationCase",
    "CertificationReport",
    "DifferentialChecker",
    "DifferentialResult",
    "GRID_BACKENDS",
    "Oracle",
    "PROFILES",
    "SIGNED_PROFILES",
    "StreamFuzzer",
    "Violation",
    "certify",
    "compatible_profiles",
    "default_grid",
    "observe",
    "oracle_for",
]
