"""Certification sweeps: backends x profiles x (eps, B, window) grids.

:func:`certify` runs a :class:`~repro.verify.differential.
DifferentialChecker` for every case in a grid and collects the outcomes
into a :class:`CertificationReport` -- a JSON-serializable record of
which backend configurations are certified correct against their exact
oracles, which is the gate every future scaling or performance PR runs
before it may touch a hot path.

``python -m repro.verify`` (see :mod:`repro.verify.__main__`) is the CLI
face of this module; :meth:`StreamService.certify` reuses the same
machinery to shadow-verify a live stream's configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..runtime.registry import available_maintainers
from .differential import DifferentialChecker, DifferentialResult
from .fuzzer import PROFILES, SIGNED_PROFILES

__all__ = [
    "CertificationCase",
    "CertificationReport",
    "certify",
    "compatible_profiles",
    "default_grid",
    "GRID_BACKENDS",
]

#: Baseline constructor parameters per backend, mirrored from the test
#: suite's canonical sweep configuration (kept small so the exact DP
#: oracles stay fast).
GRID_BACKENDS: dict[str, dict] = {
    "fixed_window": dict(window_size=64, num_buckets=8, epsilon=0.25),
    "agglomerative": dict(num_buckets=8, epsilon=0.25),
    "wavelet": dict(window_size=64, budget=8),
    "dynamic_wavelet": dict(domain_size=128, budget=8),
    "gk_quantiles": dict(epsilon=0.05),
    "equi_depth": dict(num_buckets=8, epsilon=0.05),
    "reservoir": dict(capacity=32),
    "exact": dict(window_size=64),
    "eh_count": dict(window=64, epsilon=0.25),
    "cr_precis": dict(rows=5, base=23, domain=131072),
}

#: Backends that ingest the signed turnstile encoding; every other
#: backend is insert-only and cannot consume :data:`SIGNED_PROFILES`.
TURNSTILE_BACKENDS = frozenset({"cr_precis"})

#: Extra quick-gate profiles per backend, on top of the shared pair:
#: the new scenario classes each get their dedicated adversarial
#: profile in the CI gate (window expiry; deletions).
_QUICK_EXTRA_PROFILES: dict[str, tuple[str, ...]] = {
    "eh_count": ("expiry",),
    "cr_precis": ("turnstile",),
}


def compatible_profiles(backend: str) -> tuple[str, ...]:
    """The fuzz profiles ``backend`` can ingest.

    Signed profiles (turnstile deletions) only apply to turnstile
    backends; everything else takes every non-signed profile.
    """
    if backend in TURNSTILE_BACKENDS:
        return PROFILES
    return tuple(p for p in PROFILES if p not in SIGNED_PROFILES)

#: (epsilon, num_buckets, window_size) variations for the approximation
#: backends in the full sweep.
_FULL_VARIANTS: dict[str, list[dict]] = {
    "fixed_window": [
        dict(window_size=64, num_buckets=8, epsilon=0.25),
        dict(window_size=128, num_buckets=4, epsilon=0.1),
        dict(window_size=32, num_buckets=8, epsilon=1.0, engine="dense"),
    ],
    "agglomerative": [
        dict(num_buckets=8, epsilon=0.25),
        dict(num_buckets=4, epsilon=0.1),
    ],
    "wavelet": [
        dict(window_size=64, budget=8),
        dict(window_size=128, budget=16),
    ],
    "gk_quantiles": [
        dict(epsilon=0.05),
        dict(epsilon=0.01),
    ],
}


@dataclass(frozen=True)
class CertificationCase:
    """One cell of the certification grid."""

    backend: str
    profile: str
    params: dict
    points: int = 768
    seed: int = 0

    def label(self) -> str:
        return f"{self.backend}/{self.profile}"


@dataclass
class CertificationReport:
    """Aggregated outcome of a certification sweep."""

    results: list[DifferentialResult] = field(default_factory=list)
    duration_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def violations(self) -> int:
        return sum(len(result.violations) for result in self.results)

    def backends(self) -> list[str]:
        return sorted({result.backend for result in self.results})

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "cases": len(self.results),
            "violations": self.violations,
            "backends": self.backends(),
            "duration_seconds": self.duration_seconds,
            "results": [result.to_dict() for result in self.results],
        }

    def render(self) -> str:
        """Human-readable summary, one line per case."""
        lines = []
        width = max(
            (len(f"{r.backend}/{r.profile}") for r in self.results), default=10
        )
        for result in self.results:
            status = "ok" if result.passed else "FAIL"
            lines.append(
                f"{result.backend + '/' + result.profile:<{width}}  "
                f"{result.points:>6} pts  {result.checks:>3} checks  {status}"
            )
            for violation in result.violations:
                lines.append(f"    {violation}")
        verdict = "CERTIFIED" if self.passed else "VIOLATIONS FOUND"
        lines.append(
            f"{verdict}: {len(self.results)} cases, "
            f"{self.violations} violations, {self.duration_seconds:.1f}s"
        )
        return "\n".join(lines)


def default_grid(
    *,
    quick: bool = False,
    backends: list[str] | None = None,
    profiles: list[str] | None = None,
    points: int | None = None,
    seed: int = 0,
) -> list[CertificationCase]:
    """The standard certification grid.

    ``quick`` runs every backend's baseline configuration over two
    complementary profiles (uniform noise and adversarial spikes), plus
    each new scenario class's dedicated profile (window ``expiry`` for
    ``eh_count``, signed ``turnstile`` deletions for ``cr_precis``) --
    sized to certify every registered backend in well under two
    minutes.  The full grid sweeps every profile a backend can ingest
    and adds (eps, B, window) variants for the approximation backends.

    The grid is validated against the live registry: a registered
    maintainer without a ``GRID_BACKENDS`` entry fails loudly here
    instead of silently escaping certification, and the unknown-backend
    error lists the registry's names.
    """
    registered = available_maintainers()
    missing = sorted(set(registered) - set(GRID_BACKENDS))
    if missing:
        raise RuntimeError(
            f"registered maintainers missing from GRID_BACKENDS: "
            f"{', '.join(missing)}; every registry backend must carry "
            "baseline certification parameters"
        )
    chosen_backends = backends or registered
    for backend in chosen_backends:
        if backend not in GRID_BACKENDS:
            known = ", ".join(sorted(set(registered) | set(GRID_BACKENDS)))
            raise KeyError(f"unknown backend {backend!r}; available: {known}")
    if profiles:
        for profile in profiles:
            if profile not in PROFILES:
                raise KeyError(
                    f"unknown profile {profile!r}; available: "
                    f"{', '.join(PROFILES)}"
                )
    cases = []
    for backend in chosen_backends:
        allowed = compatible_profiles(backend)
        if profiles:
            # Explicit profile selection: run each backend over the
            # requested profiles it can ingest (an insert-only backend
            # silently skips the signed turnstile profile).
            chosen_profiles = [p for p in profiles if p in allowed]
        elif quick:
            chosen_profiles = ["uniform", "spike"] + list(
                _QUICK_EXTRA_PROFILES.get(backend, ())
            )
        else:
            chosen_profiles = list(allowed)
        variants = [GRID_BACKENDS[backend]]
        if not quick:
            variants = _FULL_VARIANTS.get(backend, variants)
        for variant_index, params in enumerate(variants):
            for profile in chosen_profiles:
                cases.append(
                    CertificationCase(
                        backend=backend,
                        profile=profile,
                        params=dict(params),
                        points=points or (512 if quick else 768),
                        seed=seed + variant_index,
                    )
                )
    if not cases:
        raise ValueError(
            "selection produced no cases (the requested profiles are "
            "incompatible with the requested backends)"
        )
    return cases


def certify(
    cases: list[CertificationCase],
    *,
    check_every: int = 256,
    maintain_every: int = 32,
    progress=None,
) -> CertificationReport:
    """Run every case; returns the aggregated report.

    ``progress`` (optional) is called with each finished
    :class:`DifferentialResult` -- the CLI uses it for streaming output.
    """
    report = CertificationReport()
    started = time.perf_counter()
    for case in cases:
        checker = DifferentialChecker(
            case.backend,
            case.params,
            profile=case.profile,
            seed=case.seed,
            total_points=case.points,
            maintain_every=maintain_every,
            check_every=check_every,
        )
        result = checker.run()
        report.results.append(result)
        if progress is not None:
            progress(result)
    report.duration_seconds = time.perf_counter() - started
    return report
