"""Exact reference oracles for every synopsis backend.

The paper's central claim (Theorem 1) is *relative*: the fixed-window
histogram's SSE stays within ``(1 + eps)`` of the optimal B-bucket SSE of
the current window.  Claims of that shape are only checkable against
exact references -- the ``O(n^2 B)`` V-optimal dynamic program, exact
sliding-window range sums and quantiles, exact Haar coefficients of the
raw window.  This module states each backend's guarantee once, as an
:class:`Oracle` that consumes the identical stream the maintainer does
and audits the maintainer's synopsis against ground truth computed from
its own copy of the data.

Every oracle is deliberately *independent* of the backend under test: it
keeps the raw stream (verification runs are bounded, so memory is not a
concern), recomputes exact answers from scratch at every check, and never
reads backend internals other than the public synopsis/stats surface.
``oracle_for`` maps registry backend names onto oracle instances using
the same constructor parameters the registry factory takes, so a
:class:`~repro.verify.differential.DifferentialChecker` can pair any
registry-built maintainer with its oracle mechanically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core.bucket import Histogram
from ..core.optimal import optimal_error, optimal_error_table
from ..counting.encoding import decode_updates
from ..wavelets.haar import haar_inverse, haar_transform, next_power_of_two

__all__ = [
    "Violation",
    "Oracle",
    "VOptimalWindowOracle",
    "VOptimalPrefixOracle",
    "WaveletWindowOracle",
    "DynamicWaveletOracle",
    "GKQuantileOracle",
    "EquiDepthOracle",
    "ReservoirOracle",
    "ExactBufferOracle",
    "EHCountOracle",
    "CRPrecisOracle",
    "oracle_for",
]

#: Relative slack granted to exact-arithmetic comparisons (float64 noise).
RELATIVE_SLACK = 1e-9

#: Probe fractions used by the order-statistics oracles (the deciles).
QUANTILE_PROBES = tuple(float(f) for f in np.linspace(0.1, 0.9, 9))


@dataclass(frozen=True)
class Violation:
    """One failed correctness check.

    ``check`` names the invariant (``"epsilon-bound"``,
    ``"chunking-equivalence"``, ...), ``detail`` is a human-readable
    explanation, ``observed``/``bound`` carry the compared figures where
    the check is numeric, and ``position`` is the stream arrival count at
    which the check ran (filled in by the driver).
    """

    check: str
    detail: str
    observed: float | None = None
    bound: float | None = None
    position: int | None = None

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "detail": self.detail,
            "observed": self.observed,
            "bound": self.bound,
            "position": self.position,
        }

    def __str__(self) -> str:
        numbers = (
            f" (observed {self.observed:g}, bound {self.bound:g})"
            if self.observed is not None and self.bound is not None
            else ""
        )
        at = f" @ {self.position}" if self.position is not None else ""
        return f"[{self.check}]{at} {self.detail}{numbers}"


class Oracle(ABC):
    """Exact reference fed the same stream as the maintainer under test.

    ``extend(batch)`` mirrors ingestion; ``check(maintainer)`` audits the
    maintainer's current synopsis against exact answers and returns the
    violations found (empty list == certified at this position).  The
    base class stores the raw stream; subclasses state the guarantee.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._count = 0

    def extend(self, batch) -> None:
        array = np.asarray(batch, dtype=np.float64)
        if array.size == 0:
            return
        self._chunks.append(array.copy())
        self._count += array.size

    @property
    def count(self) -> int:
        """Stream points consumed so far."""
        return self._count

    def values(self) -> np.ndarray:
        """The full stream seen so far (oldest first)."""
        if not self._chunks:
            return np.empty(0, dtype=np.float64)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]

    def window(self, size: int) -> np.ndarray:
        """The last ``size`` stream points (the sliding-window view)."""
        return self.values()[-size:]

    @abstractmethod
    def check(self, maintainer) -> list[Violation]:
        """Audit ``maintainer`` against ground truth right now."""

    # ------------------------------------------------------------------
    # Shared checks
    # ------------------------------------------------------------------

    def _check_points(self, maintainer) -> list[Violation]:
        points = maintainer.stats().points
        if points != self._count:
            return [
                Violation(
                    "ingest-count",
                    f"maintainer counted {points} points, oracle fed {self._count}",
                    observed=float(points),
                    bound=float(self._count),
                )
            ]
        return []


def _histogram_structure(
    histogram: Histogram, window: np.ndarray, num_buckets: int
) -> list[Violation]:
    """Structural invariants every V-optimal histogram must satisfy."""
    violations = []
    buckets = histogram.buckets
    if len(buckets) > num_buckets:
        violations.append(
            Violation(
                "bucket-budget",
                f"{len(buckets)} buckets exceed the budget {num_buckets}",
                observed=float(len(buckets)),
                bound=float(num_buckets),
            )
        )
    expected_start = 0
    for bucket in buckets:
        if bucket.start != expected_start:
            violations.append(
                Violation(
                    "bucket-partition",
                    f"bucket starts at {bucket.start}, expected {expected_start}",
                )
            )
            break
        expected_start = bucket.end + 1
    if buckets and buckets[-1].end != window.size - 1:
        violations.append(
            Violation(
                "bucket-partition",
                f"last bucket ends at {buckets[-1].end}, window has "
                f"{window.size} points",
            )
        )
    for bucket in buckets:
        if 0 <= bucket.start <= bucket.end < window.size:
            mean = float(window[bucket.start : bucket.end + 1].mean())
            slack = RELATIVE_SLACK * (1.0 + abs(mean))
            if abs(bucket.value - mean) > slack:
                violations.append(
                    Violation(
                        "bucket-representative",
                        f"bucket [{bucket.start}, {bucket.end}] representative "
                        f"{bucket.value:g} is not the bucket mean {mean:g}",
                        observed=bucket.value,
                        bound=mean,
                    )
                )
                break
    return violations


def _herror_monotonicity(values: np.ndarray, num_buckets: int) -> list[Violation]:
    """The DP table's monotone structure (paper section 4.2).

    ``HERROR[j, k]`` is non-increasing in the bucket count ``k`` (more
    buckets never hurt) and non-decreasing in the prefix end ``j``
    (covering more points never helps, for a fixed budget).
    """
    table = optimal_error_table(values, num_buckets)
    slack = RELATIVE_SLACK * (1.0 + float(np.abs(table).max()))
    violations = []
    if np.any(np.diff(table, axis=1) > slack):
        j, k = np.argwhere(np.diff(table, axis=1) > slack)[0]
        violations.append(
            Violation(
                "herror-monotonicity",
                f"HERROR[{j}, {k + 1}] > HERROR[{j}, {k}]: error grew when "
                "a bucket was added",
                observed=float(table[j, k + 1]),
                bound=float(table[j, k]),
            )
        )
    if np.any(np.diff(table, axis=0) < -slack):
        j, k = np.argwhere(np.diff(table, axis=0) < -slack)[0]
        violations.append(
            Violation(
                "herror-monotonicity",
                f"HERROR[{j + 1}, {k}] < HERROR[{j}, {k}]: error shrank when "
                "a point was appended",
                observed=float(table[j + 1, k]),
                bound=float(table[j, k]),
            )
        )
    return violations


class VOptimalWindowOracle(Oracle):
    """Theorem 1 audited exactly: the fixed-window histogram vs the DP.

    Checks, per call: the maintainer's buffered window matches the
    oracle's sliding window point for point; the served histogram is a
    well-formed bucket-mean partition; its true SSE is within
    ``(1 + epsilon)`` of the exact V-optimal SSE from the ``O(n^2 B)``
    dynamic program; the builder's internal HERROR estimate brackets the
    realized SSE; and the DP table itself is monotone in both axes.
    """

    def __init__(
        self,
        window_size: int,
        num_buckets: int,
        epsilon: float,
        *,
        monotonicity: bool = True,
        **_ignored,
    ) -> None:
        super().__init__()
        self.window_size = int(window_size)
        self.num_buckets = int(num_buckets)
        self.epsilon = float(epsilon)
        self.monotonicity = monotonicity

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        window = self.window(self.window_size)
        if window.size == 0:
            return violations
        buffered = maintainer.window_values()
        if buffered.size != window.size or not np.array_equal(buffered, window):
            violations.append(
                Violation(
                    "window-divergence",
                    f"maintainer buffers {buffered.size} points that do not "
                    f"match the oracle's last {window.size} stream points",
                )
            )
            return violations
        histogram = maintainer.synopsis()
        violations += _histogram_structure(histogram, window, self.num_buckets)
        served = histogram.sse(window)
        optimal = optimal_error(window, self.num_buckets)
        bound = (1.0 + self.epsilon) * optimal
        slack = 1e-6 * (1.0 + optimal)
        if served > bound + slack:
            violations.append(
                Violation(
                    "epsilon-bound",
                    f"served SSE exceeds (1 + {self.epsilon:g}) * OPT over the "
                    f"{window.size}-point window",
                    observed=served,
                    bound=bound,
                )
            )
        estimate = maintainer.builder.herror_estimate
        if served > estimate + 1e-6 * (1.0 + estimate):
            violations.append(
                Violation(
                    "herror-estimate",
                    "realized SSE exceeds the builder's internal HERROR "
                    "estimate (the walked partition left the certified cover)",
                    observed=served,
                    bound=estimate,
                )
            )
        if estimate > bound + slack:
            violations.append(
                Violation(
                    "herror-estimate",
                    "the builder's HERROR estimate itself breaks the "
                    "(1 + eps) * OPT bound",
                    observed=estimate,
                    bound=bound,
                )
            )
        if self.monotonicity:
            violations += _herror_monotonicity(window, self.num_buckets)
        return violations


class VOptimalPrefixOracle(Oracle):
    """The agglomerative whole-prefix histogram vs the exact DP.

    Same ``(1 + eps)`` contract as the fixed-window case, but over the
    entire prefix seen so far (paper section 4.3).  The exact DP is
    quadratic in the prefix length, so past ``max_exact_points`` the SSE
    comparison is skipped and only the structural checks run --
    verification streams are sized to stay under the cap.
    """

    def __init__(
        self,
        num_buckets: int,
        epsilon: float,
        *,
        max_exact_points: int = 2048,
        **_ignored,
    ) -> None:
        super().__init__()
        self.num_buckets = int(num_buckets)
        self.epsilon = float(epsilon)
        self.max_exact_points = int(max_exact_points)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        prefix = self.values()
        if prefix.size == 0:
            return violations
        histogram = maintainer.synopsis()
        violations += _histogram_structure(histogram, prefix, self.num_buckets)
        if prefix.size > self.max_exact_points:
            return violations
        served = histogram.sse(prefix)
        optimal = optimal_error(prefix, self.num_buckets)
        bound = (1.0 + self.epsilon) * optimal
        slack = 1e-6 * (1.0 + optimal)
        if served > bound + slack:
            violations.append(
                Violation(
                    "epsilon-bound",
                    f"prefix histogram SSE exceeds (1 + {self.epsilon:g}) * OPT "
                    f"over the {prefix.size}-point prefix",
                    observed=served,
                    bound=bound,
                )
            )
        return violations


def _top_b_haar(window: np.ndarray, budget: int) -> tuple[dict[int, float], float]:
    """Exact top-``budget`` Haar selection and its optimal L2 error.

    Mirrors the synopsis's published semantics (mean padding, largest
    |coefficient| first, ties broken by index) from first principles: by
    Parseval the dropped coefficients' energy *is* the optimal B-term
    reconstruction SSE of the padded sequence.
    """
    padded_size = next_power_of_two(window.size)
    padded = window
    if padded_size != window.size:
        padded = np.concatenate(
            (window, np.full(padded_size - window.size, window.mean()))
        )
    coefficients = haar_transform(padded)
    order = np.lexsort((np.arange(padded_size), -np.abs(coefficients)))
    keep = order[: min(budget, padded_size)]
    dropped = order[min(budget, padded_size) :]
    expected = {int(i): float(coefficients[i]) for i in keep}
    optimal_sse = float(np.sum(coefficients[dropped] ** 2))
    return expected, optimal_sse


class WaveletWindowOracle(Oracle):
    """Top-B Haar synopsis of the window vs an independent transform.

    The top-B-by-magnitude selection is *exactly* optimal among B-term
    Haar synopses (Parseval), so this oracle demands equality, not an
    epsilon: every retained coefficient must match the exact transform,
    and the synopsis's reconstruction SSE must equal the energy of the
    dropped coefficients.
    """

    def __init__(self, window_size: int, budget: int, **_ignored) -> None:
        super().__init__()
        self.window_size = int(window_size)
        self.budget = int(budget)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        window = self.window(self.window_size)
        if window.size == 0:
            return violations
        synopsis = maintainer.synopsis()
        expected, optimal_sse = _top_b_haar(window, self.budget)
        retained = synopsis.coefficients
        scale = 1.0 + max((abs(v) for v in expected.values()), default=0.0)
        if set(retained) != set(expected):
            violations.append(
                Violation(
                    "haar-selection",
                    f"synopsis kept coefficients {sorted(retained)}, the exact "
                    f"top-{self.budget} set is {sorted(expected)}",
                )
            )
        else:
            for index, value in expected.items():
                if abs(retained[index] - value) > RELATIVE_SLACK * scale:
                    violations.append(
                        Violation(
                            "haar-coefficient",
                            f"coefficient {index} drifted from the exact "
                            "transform",
                            observed=retained[index],
                            bound=value,
                        )
                    )
                    break
        reconstruction = synopsis.to_array()
        padded_size = next_power_of_two(window.size)
        padded_window = window
        if padded_size != window.size:
            padded_window = np.concatenate(
                (window, np.full(padded_size - window.size, window.mean()))
            )
        dense = np.zeros(padded_size)
        for index, value in retained.items():
            dense[index] = value
        full = haar_inverse(dense)
        served_sse = float(np.sum((full - padded_window) ** 2))
        slack = 1e-6 * (1.0 + optimal_sse)
        if served_sse > optimal_sse + slack:
            violations.append(
                Violation(
                    "parseval-optimality",
                    "reconstruction SSE exceeds the dropped-coefficient "
                    "energy (top-B selection is not optimal)",
                    observed=served_sse,
                    bound=optimal_sse,
                )
            )
        if reconstruction.size != window.size:
            violations.append(
                Violation(
                    "haar-reconstruction",
                    f"reconstruction has {reconstruction.size} points, window "
                    f"has {window.size}",
                )
            )
        return violations


class DynamicWaveletOracle(Oracle):
    """[MVW00] dynamic wavelet histogram vs an exact frequency vector.

    The oracle maintains the exact frequency vector (rounding arrivals
    half-to-even, exactly as the adapter does) and checks that (a) the
    incrementally maintained coefficients agree with a from-scratch Haar
    transform of that vector and (b) the served top-B synopsis achieves
    the optimal B-term energy.
    """

    def __init__(self, domain_size: int, budget: int, **_ignored) -> None:
        super().__init__()
        self.domain_size = int(domain_size)
        self.budget = int(budget)
        self._frequencies = np.zeros(self.domain_size, dtype=np.float64)

    def extend(self, batch) -> None:
        array = np.asarray(batch, dtype=np.float64)
        super().extend(array)
        if array.size:
            bins = np.rint(array).astype(np.int64)
            np.add.at(self._frequencies, bins, 1.0)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        if self._count == 0:
            return violations
        maintained = maintainer.backend.frequencies()
        slack = 1e-6 * (1.0 + float(self._frequencies.max()))
        if maintained.size != self.domain_size or np.any(
            np.abs(maintained - self._frequencies) > slack
        ):
            violations.append(
                Violation(
                    "frequency-divergence",
                    "incrementally maintained frequencies diverged from the "
                    "exact frequency vector",
                )
            )
            return violations
        padded_size = next_power_of_two(self.domain_size)
        padded = np.concatenate(
            (self._frequencies, np.zeros(padded_size - self.domain_size))
        )
        exact = haar_transform(padded)
        synopsis = maintainer.synopsis()
        coefficient_slack = 1e-6 * (1.0 + float(np.abs(exact).max()))
        for index, value in synopsis.coefficients.items():
            if abs(value - exact[index]) > coefficient_slack:
                violations.append(
                    Violation(
                        "haar-coefficient",
                        f"maintained coefficient {index} drifted from the "
                        "exact transform of the frequency vector",
                        observed=value,
                        bound=float(exact[index]),
                    )
                )
                break
        kept_energy = sum(
            float(exact[i]) ** 2 for i in synopsis.coefficients
        )
        order = np.argsort(-np.abs(exact), kind="stable")
        optimal_energy = float(
            np.sum(exact[order[: len(synopsis.coefficients)]] ** 2)
        )
        if kept_energy < optimal_energy - 1e-6 * (1.0 + optimal_energy):
            violations.append(
                Violation(
                    "parseval-optimality",
                    "served coefficient set keeps less energy than the exact "
                    "top-B selection",
                    observed=kept_energy,
                    bound=optimal_energy,
                )
            )
        return violations


def _rank_band_error(ordered: np.ndarray, answer: float, target: float) -> float:
    """Distance between a target rank and the rank band ``answer`` occupies.

    Ranks are 1-based, matching the GK summary's convention.  With ties,
    ``answer`` occupies the whole band ``[first, last]`` of its
    occurrences; a target inside the band is distance zero.
    """
    first = int(np.searchsorted(ordered, answer, side="left")) + 1
    last = int(np.searchsorted(ordered, answer, side="right"))
    if last < first:  # answer absent from the stream: use insertion point
        last = first
    if first <= target <= last:
        return 0.0
    return min(abs(first - target), abs(last - target))


def _quantile_target(fraction: float, n: int) -> int:
    """The 1-based rank the summary aims for: ``max(1, round(f * N))``,
    mirroring :meth:`GKQuantileSummary.query` exactly."""
    return max(1, int(round(fraction * n)))


class GKQuantileOracle(Oracle):
    """Greenwald-Khanna's deterministic guarantee: eps-approximate ranks.

    For each probed fraction ``f`` the summary's answer must occupy a
    rank within ``eps * N`` of the target (plus one position of
    discretization slack); ``rank_bounds`` must bracket the true rank
    with a band no wider than ``2 * eps * N``.
    """

    def __init__(self, epsilon: float, **_ignored) -> None:
        super().__init__()
        self.epsilon = float(epsilon)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        values = self.values()
        if values.size == 0:
            return violations
        ordered = np.sort(values)
        n = ordered.size
        allowance = self.epsilon * n + 1.0
        summary = maintainer.synopsis()
        for fraction in QUANTILE_PROBES:
            answer = summary.query(fraction)
            error = _rank_band_error(ordered, answer, _quantile_target(fraction, n))
            if error > allowance:
                violations.append(
                    Violation(
                        "quantile-rank",
                        f"the {fraction:.0%} quantile answer {answer:g} sits "
                        f"{error:.0f} ranks from its target (N={n})",
                        observed=error,
                        bound=allowance,
                    )
                )
                break
        for probe in (ordered[0], ordered[n // 2], ordered[-1]):
            min_rank, max_rank = summary.rank_bounds(float(probe))
            true_rank = float(np.searchsorted(ordered, probe, side="right"))
            band_slack = 2.0 * self.epsilon * n + 1.0
            if not (
                min_rank - band_slack <= true_rank <= max_rank + band_slack
            ):
                violations.append(
                    Violation(
                        "rank-bounds",
                        f"rank_bounds({probe:g}) = [{min_rank}, {max_rank}] "
                        f"misses the true rank {true_rank:.0f} by more than "
                        "the 2*eps*N band",
                        observed=true_rank,
                    )
                )
                break
        return violations


class EquiDepthOracle(Oracle):
    """Streaming equi-depth summary vs exact quantiles and range counts."""

    def __init__(self, num_buckets: int, epsilon: float = 0.01, **_ignored) -> None:
        super().__init__()
        self.num_buckets = int(num_buckets)
        self.epsilon = float(epsilon)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        values = self.values()
        if values.size == 0:
            return violations
        ordered = np.sort(values)
        n = ordered.size
        summary = maintainer.synopsis()
        allowance = self.epsilon * n + 1.0
        for fraction in QUANTILE_PROBES:
            answer = summary.estimate_quantile(fraction)
            error = _rank_band_error(ordered, answer, _quantile_target(fraction, n))
            if error > allowance:
                violations.append(
                    Violation(
                        "quantile-rank",
                        f"equi-depth {fraction:.0%} quantile {answer:g} sits "
                        f"{error:.0f} ranks from its target (N={n})",
                        observed=error,
                        bound=allowance,
                    )
                )
                break
        # Range-count probes at integer boundaries near the quartile cut
        # points: the summary is documented for integer attributes
        # (``count = rank(high) - rank(low - 1)``), and each GK-backed
        # rank estimate may be off by eps * N.
        cuts = np.quantile(ordered, [0.0, 0.25, 0.5, 0.75, 1.0])
        count_allowance = 2.0 * self.epsilon * n + 2.0
        for raw_low, raw_high in zip(cuts[:-1], cuts[1:]):
            low = float(np.ceil(raw_low))
            high = float(np.floor(raw_high))
            if low > high:
                continue
            exact = float(np.count_nonzero((values >= low) & (values <= high)))
            approx = summary.estimate_count(low, high)
            if abs(approx - exact) > count_allowance:
                violations.append(
                    Violation(
                        "range-count",
                        f"estimate_count([{low:g}, {high:g}]) missed the exact "
                        f"count by more than 2*eps*N (N={n})",
                        observed=approx,
                        bound=exact,
                    )
                )
                break
        return violations


class ReservoirOracle(Oracle):
    """Structural guarantees of Algorithm-R (the statistical ones are
    metamorphic: same seed, same stream => bit-identical sample).

    Checks: the sample is a sub-multiset of the stream, its size is
    exactly ``min(capacity, N)``, and while the stream still fits in the
    reservoir the sample *is* the stream.
    """

    def __init__(self, capacity: int, seed: int = 0, **_ignored) -> None:
        super().__init__()
        self.capacity = int(capacity)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        values = self.values()
        sample = maintainer.synopsis().values()
        expected_size = min(self.capacity, values.size)
        if sample.size != expected_size:
            violations.append(
                Violation(
                    "sample-size",
                    f"reservoir holds {sample.size} values, expected "
                    f"{expected_size}",
                    observed=float(sample.size),
                    bound=float(expected_size),
                )
            )
            return violations
        stream_counts = Counter(values.tolist())
        sample_counts = Counter(sample.tolist())
        if sample_counts - stream_counts:
            violations.append(
                Violation(
                    "sample-containment",
                    "reservoir contains values (or multiplicities) that never "
                    "appeared in the stream",
                )
            )
        if values.size <= self.capacity and sorted(sample.tolist()) != sorted(
            values.tolist()
        ):
            violations.append(
                Violation(
                    "sample-containment",
                    "stream still fits in the reservoir but the sample is not "
                    "the whole stream",
                )
            )
        return violations


class ExactBufferOracle(Oracle):
    """The exact backend must be *exactly* exact: zero tolerance."""

    def __init__(self, window_size: int, **_ignored) -> None:
        super().__init__()
        self.window_size = int(window_size)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        window = self.window(self.window_size)
        if window.size == 0:
            return violations
        synopsis = maintainer.synopsis()
        buffered = synopsis.to_array()
        if buffered.size != window.size or not np.array_equal(buffered, window):
            violations.append(
                Violation(
                    "window-divergence",
                    "exact buffer does not match the oracle's window",
                )
            )
            return violations
        cumulative = np.concatenate(([0.0], np.cumsum(window)))
        probes = [(0, window.size - 1), (0, 0), (window.size // 2, window.size - 1)]
        for i, j in probes:
            exact = float(cumulative[j + 1] - cumulative[i])
            served = synopsis.range_sum(i, j)
            if abs(served - exact) > RELATIVE_SLACK * (1.0 + abs(exact)):
                violations.append(
                    Violation(
                        "range-sum",
                        f"exact backend's range_sum({i}, {j}) diverged from "
                        "the true sum",
                        observed=served,
                        bound=exact,
                    )
                )
                break
        return violations


class EHCountOracle(Oracle):
    """Sliding-window counting (Datar et al.) vs exact window tallies.

    The sharpened exponential-histogram estimate carries an
    *unconditional* eps-relative guarantee (see
    :mod:`repro.counting.eh`), so the checks are strict: the exact
    window length; eps-relative nonzero count and windowed sum
    (including exact zero after full expiry); an eps-relative windowed
    mean (exact denominator); and the composed variance bound
    ``eps * m2 / L + (2 eps + eps^2) * mean^2``.
    """

    def __init__(self, window: int, epsilon: float, **_ignored) -> None:
        super().__init__()
        self.window_size = int(window)
        self.epsilon = float(epsilon)

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        synopsis = maintainer.synopsis()
        window = np.rint(self.window(self.window_size)).astype(np.int64)
        length = int(window.size)
        if synopsis.window_count() != length:
            violations.append(
                Violation(
                    "window-length",
                    f"window_count() reported {synopsis.window_count()}, the "
                    f"window holds exactly {length} arrivals",
                    observed=float(synopsis.window_count()),
                    bound=float(length),
                )
            )
            return violations
        if length == 0:
            return violations
        eps = self.epsilon
        exact_nonzero = int(np.count_nonzero(window))
        exact_sum = int(window.sum())
        checks = (
            ("nonzero-count", synopsis.nonzero_count(), float(exact_nonzero)),
            ("window-sum", synopsis.window_sum(), float(exact_sum)),
        )
        for check, served, exact in checks:
            allowance = eps * exact + RELATIVE_SLACK * (1.0 + exact)
            if abs(served - exact) > allowance:
                violations.append(
                    Violation(
                        check,
                        f"windowed estimate missed the exact value by more "
                        f"than eps = {eps:g} relative (window of {length})",
                        observed=served,
                        bound=exact,
                    )
                )
        exact_mean = exact_sum / length
        mean_allowance = eps * exact_mean + RELATIVE_SLACK * (1.0 + exact_mean)
        if abs(synopsis.window_mean() - exact_mean) > mean_allowance:
            violations.append(
                Violation(
                    "window-mean",
                    "windowed mean missed the exact mean by more than eps "
                    "relative (the denominator is exact)",
                    observed=synopsis.window_mean(),
                    bound=exact_mean,
                )
            )
        exact_m2 = float((window.astype(np.float64) ** 2).sum())
        exact_variance = exact_m2 / length - exact_mean * exact_mean
        variance_allowance = (
            eps * exact_m2 / length
            + (2.0 * eps + eps * eps) * exact_mean * exact_mean
            + RELATIVE_SLACK * (1.0 + abs(exact_variance))
        )
        if abs(synopsis.window_variance() - exact_variance) > variance_allowance:
            violations.append(
                Violation(
                    "window-variance",
                    "windowed variance broke the composed moment bound "
                    "eps*m2/L + (2eps + eps^2)*mean^2",
                    observed=synopsis.window_variance(),
                    bound=exact_variance,
                )
            )
        return violations


class CRPrecisOracle(Oracle):
    """CR-precis vs an exact frequency vector -- deterministic bounds.

    The oracle decodes the signed-unit turnstile stream into exact
    frequencies and demands: the table *equals* a from-scratch
    recomputation (the structure is deterministic, so anything else is
    a divergence, not an approximation); ``l1()`` is exact; every
    probed point query never underestimates and overestimates by at
    most ``(||f||_1 - f_x) * e / t`` (the CRT collision bound); heavy
    hitters admit no false negatives; range counts obey the summed
    per-key bound.
    """

    #: Heavy-hitter threshold fraction probed at every check.
    HEAVY_PHI = 0.05

    def __init__(self, rows: int, base: int, domain: int, **_ignored) -> None:
        super().__init__()
        self.rows = int(rows)
        self.base = int(base)
        self.domain = int(domain)
        self._frequencies: Counter = Counter()

    def extend(self, batch) -> None:
        array = np.asarray(batch, dtype=np.float64)
        super().extend(array)
        if array.size:
            keys, deltas = decode_updates(array)
            for key, delta in zip(keys.tolist(), deltas.tolist()):
                self._frequencies[key] += delta
                if self._frequencies[key] == 0:
                    del self._frequencies[key]

    def _probe_keys(self) -> list[int]:
        """A deterministic probe set: the heaviest keys, the lightest,
        and a few absent ones."""
        by_weight = sorted(
            self._frequencies, key=lambda key: (-self._frequencies[key], key)
        )
        probes = by_weight[:8] + by_weight[-4:]
        absent = 0
        while len(probes) < 16 and absent < self.domain:
            if absent not in self._frequencies:
                probes.append(absent)
            absent += 1
        return sorted(set(probes))

    def check(self, maintainer) -> list[Violation]:
        violations = self._check_points(maintainer)
        synopsis = maintainer.synopsis()
        if min(self._frequencies.values(), default=0) < 0:
            raise AssertionError(
                "turnstile fuzz stream drove a frequency negative; the "
                "strict-turnstile profile is broken"
            )
        expected_tables = [
            np.zeros(prime, dtype=np.int64) for prime in synopsis.primes
        ]
        for key, count in self._frequencies.items():
            for prime, table in zip(synopsis.primes, expected_tables):
                table[key % prime] += count
        for prime, expected, actual in zip(
            synopsis.primes, expected_tables, synopsis.tables
        ):
            if not np.array_equal(expected, actual):
                violations.append(
                    Violation(
                        "table-divergence",
                        f"row mod {prime} diverged from the exact "
                        "recomputation (CR-precis is deterministic)",
                    )
                )
                return violations
        exact_l1 = sum(self._frequencies.values())
        if synopsis.l1() != exact_l1:
            violations.append(
                Violation(
                    "l1-exactness",
                    f"l1() reported {synopsis.l1()}, exact mass is {exact_l1}",
                    observed=float(synopsis.l1()),
                    bound=float(exact_l1),
                )
            )
            return violations
        exponent = synopsis.error_exponent()
        for key in self._probe_keys():
            exact = self._frequencies.get(key, 0)
            served = synopsis.point_query(key)
            bound = (exact_l1 - exact) * exponent / self.rows
            if served < exact:
                violations.append(
                    Violation(
                        "point-underestimate",
                        f"point_query({key}) underestimated the true "
                        "frequency (impossible in the strict turnstile model)",
                        observed=float(served),
                        bound=float(exact),
                    )
                )
                break
            if served - exact > bound + RELATIVE_SLACK * (1.0 + bound):
                violations.append(
                    Violation(
                        "point-overestimate",
                        f"point_query({key}) overestimated beyond the CRT "
                        f"bound (||f||_1 - f_x) * {exponent} / {self.rows}",
                        observed=float(served - exact),
                        bound=bound,
                    )
                )
                break
        if exact_l1 > 0:
            reported = synopsis.heavy_hitters(self.HEAVY_PHI)
            threshold = max(1.0, self.HEAVY_PHI * exact_l1)
            for key, count in self._frequencies.items():
                if count >= threshold and key not in reported:
                    violations.append(
                        Violation(
                            "heavy-hitter-miss",
                            f"key {key} has frequency {count} >= "
                            f"{threshold:g} but was not reported (false "
                            "negatives are impossible)",
                            observed=float(count),
                            bound=threshold,
                        )
                    )
                    break
        if self._frequencies:
            anchor = sorted(self._frequencies)[len(self._frequencies) // 2]
            low = max(0, anchor - 16)
            high = min(self.domain - 1, anchor + 16)
            exact_range = sum(
                count
                for key, count in self._frequencies.items()
                if low <= key <= high
            )
            served_range = synopsis.range_count(low, high)
            range_bound = sum(
                (exact_l1 - self._frequencies.get(key, 0)) * exponent / self.rows
                for key in range(low, high + 1)
            )
            if served_range < exact_range or (
                served_range - exact_range
                > range_bound + RELATIVE_SLACK * (1.0 + range_bound)
            ):
                violations.append(
                    Violation(
                        "range-count",
                        f"range_count({low}, {high}) left the "
                        "[exact, exact + summed CRT bound] band",
                        observed=float(served_range),
                        bound=float(exact_range),
                    )
                )
        return violations


#: Registry backend name -> oracle class; constructor parameters mirror
#: the registry factory's (extra keywords are ignored, so a maintainer
#: spec's params dict can be forwarded wholesale).
_ORACLES: dict[str, type[Oracle]] = {
    "fixed_window": VOptimalWindowOracle,
    "agglomerative": VOptimalPrefixOracle,
    "wavelet": WaveletWindowOracle,
    "dynamic_wavelet": DynamicWaveletOracle,
    "gk_quantiles": GKQuantileOracle,
    "equi_depth": EquiDepthOracle,
    "reservoir": ReservoirOracle,
    "exact": ExactBufferOracle,
    "eh_count": EHCountOracle,
    "cr_precis": CRPrecisOracle,
}


def oracle_for(backend: str, params: dict) -> Oracle:
    """The exact oracle matching a registry backend and its parameters."""
    try:
        factory = _ORACLES[backend]
    except KeyError:
        known = ", ".join(sorted(_ORACLES))
        raise KeyError(
            f"no oracle registered for backend {backend!r}; available: {known}"
        ) from None
    return factory(**params)
