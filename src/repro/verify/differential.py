"""Differential and metamorphic checking of registry backends.

:class:`DifferentialChecker` drives three registry-built maintainers and
one exact :class:`~repro.verify.oracles.Oracle` over the same fuzzed
stream, in lockstep:

* the **primary** ingests each batch whole and is audited against the
  oracle's exact answers (epsilon bounds, HERROR monotonicity, window
  integrity -- whatever the backend's guarantee is);
* the **twin** ingests every batch split in two
  (``extend(a + b)`` vs ``extend(a); extend(b)``) -- the batch-split
  metamorphic relation.  Profiles emit integer-valued floats, so the
  twin's synopsis must match the primary's *exactly*, not approximately;
* the **restored** maintainer is born mid-run from the primary's
  ``state_dict`` pushed through a real JSON round-trip, then fed the
  remaining stream -- the checkpoint/restore metamorphic relation
  (round-trip followed by identical input must be indistinguishable from
  never having been snapshotted).

All maintainers are maintained at the same arrival positions, so the
deterministic telemetry counters (:meth:`MaintainerStats.counters`) must
agree too; a divergence there means batched and split ingestion did
different amounts of work, which historically is how cadence bugs have
announced themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..core.bucket import Histogram
from ..counting.cr_precis import CRPrecis
from ..counting.eh import ExponentialHistogram
from ..runtime.adapters import BufferSynopsis
from ..runtime.registry import make_maintainer
from ..sketches.gk import GKQuantileSummary
from ..sketches.reservoir import ReservoirSample
from ..warehouse.streaming import StreamingEquiDepthSummary
from ..wavelets.synopsis import WaveletSynopsis
from .fuzzer import StreamFuzzer
from .oracles import QUANTILE_PROBES, Oracle, Violation, oracle_for

__all__ = ["DifferentialChecker", "DifferentialResult", "observe"]


def observe(maintainer) -> dict:
    """A canonical, comparable observation of a maintainer's state.

    Two maintainers that have consumed the same stream through any batch
    chunking (or through a checkpoint round-trip) must produce *equal*
    observations.  The observation covers the served synopsis, rendered
    per type, plus the deterministic telemetry counters.
    """
    synopsis = maintainer.synopsis()
    if isinstance(synopsis, Histogram):
        rendered = {
            "kind": "histogram",
            "buckets": [
                (bucket.start, bucket.end, bucket.value)
                for bucket in synopsis.buckets
            ],
        }
    elif isinstance(synopsis, WaveletSynopsis):
        rendered = {
            "kind": "wavelet",
            "coefficients": sorted(synopsis.coefficients.items()),
            "length": len(synopsis),
        }
    elif isinstance(synopsis, GKQuantileSummary):
        rendered = {
            "kind": "gk",
            "count": len(synopsis),
            "size": synopsis.summary_size,
            "quantiles": [synopsis.query(f) for f in QUANTILE_PROBES],
        }
    elif isinstance(synopsis, StreamingEquiDepthSummary):
        rendered = {"kind": "equi_depth", "state": synopsis.to_dict()}
    elif isinstance(synopsis, ReservoirSample):
        # to_dict carries the rng state: chunking must not even change
        # the random number consumption, let alone the sample.
        rendered = {"kind": "reservoir", "state": synopsis.to_dict()}
    elif isinstance(synopsis, BufferSynopsis):
        rendered = {"kind": "buffer", "values": synopsis.to_array().tolist()}
    elif isinstance(synopsis, ExponentialHistogram):
        # The full bucket state (not just the estimates): chunking or a
        # restore that perturbed any bank must be visible.
        rendered = {"kind": "eh_count", "state": synopsis.to_dict()}
    elif isinstance(synopsis, CRPrecis):
        rendered = {"kind": "cr_precis", "state": synopsis.to_dict()}
    else:  # pragma: no cover - new backend without an observation rule
        raise TypeError(
            f"no observation rule for synopsis type {type(synopsis).__name__}"
        )
    return {"synopsis": rendered, "counters": maintainer.stats().counters()}


@dataclass
class DifferentialResult:
    """Outcome of one differential run (one backend x profile x config)."""

    backend: str
    profile: str
    seed: int
    points: int
    params: dict
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "profile": self.profile,
            "seed": self.seed,
            "points": self.points,
            "params": dict(self.params),
            "checks": self.checks,
            "passed": self.passed,
            "violations": [v.to_dict() for v in self.violations],
        }


class DifferentialChecker:
    """Drive one backend and its oracle in lockstep over a fuzzed stream.

    Parameters
    ----------
    backend / params:
        Registry name and constructor keywords, exactly as
        :func:`~repro.runtime.registry.make_maintainer` takes them.
    profile / seed:
        Fuzzing profile and the single seed all randomness derives from.
    total_points:
        Stream length of the run.
    maintain_every:
        Maintenance cadence in arrivals (every maintainer is maintained
        at the same positions).
    check_every:
        Oracle-audit cadence in arrivals.  Each check runs the backend's
        exact-oracle audit plus the metamorphic equivalences; a final
        check always runs at end of stream.
    max_batch:
        Upper bound on fuzzed batch sizes.
    oracle:
        Override the oracle (defaults to ``oracle_for(backend, params)``).
        Passing a deliberately broken maintainer/oracle pair is how the
        test suite proves the checker *can* fail.
    """

    def __init__(
        self,
        backend: str,
        params: dict,
        *,
        profile: str = "uniform",
        seed: int = 0,
        total_points: int = 1024,
        maintain_every: int = 32,
        check_every: int = 256,
        max_batch: int = 48,
        oracle: Oracle | None = None,
    ) -> None:
        if total_points < 1:
            raise ValueError("total_points must be >= 1")
        if maintain_every < 1 or check_every < 1:
            raise ValueError("cadences must be >= 1")
        self.backend = backend
        self.params = dict(params)
        self.profile = profile
        self.seed = int(seed)
        self.total_points = int(total_points)
        self.maintain_every = int(maintain_every)
        self.check_every = int(check_every)
        self.max_batch = int(max_batch)
        self._oracle = oracle

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _fuzzer(self) -> StreamFuzzer:
        clip = None
        if self.backend == "dynamic_wavelet":
            clip = int(self.params["domain_size"])
        return StreamFuzzer(self.profile, self.seed, clip_domain=clip)

    @staticmethod
    def _split_extend(maintainer, batch: np.ndarray) -> None:
        """Feed ``batch`` as two pieces (and exercise ``append`` on
        single-point pieces): the left side of the metamorphic relation."""
        pivot = batch.size // 2
        for piece in (batch[:pivot], batch[pivot:]):
            if piece.size == 1:
                maintainer.append(float(piece[0]))
            elif piece.size:
                maintainer.extend(piece)

    def run(self) -> DifferentialResult:
        """Execute the full differential run; returns the result record."""
        result = DifferentialResult(
            backend=self.backend,
            profile=self.profile,
            seed=self.seed,
            points=self.total_points,
            params=dict(self.params),
        )
        primary = make_maintainer(self.backend, **self.params)
        twin = make_maintainer(self.backend, **self.params)
        restored = None
        oracle = self._oracle or oracle_for(self.backend, self.params)

        arrivals = 0
        next_maintain = self.maintain_every
        next_check = self.check_every
        restore_at = self.total_points // 2

        def check_now() -> None:
            result.checks += 1
            for violation in oracle.check(primary):
                result.violations.append(
                    Violation(
                        violation.check,
                        violation.detail,
                        observed=violation.observed,
                        bound=violation.bound,
                        position=arrivals,
                    )
                )
            reference = observe(primary)
            if observe(twin) != reference:
                result.violations.append(
                    Violation(
                        "chunking-equivalence",
                        "extend(a + b) and extend(a); extend(b) diverged",
                        position=arrivals,
                    )
                )
            # The restored maintainer re-materializes derived structures
            # once after loading (snapshots carry only durable state), so
            # its operation counters sit one rebuild ahead; its *answers*
            # must be indistinguishable.
            if (
                restored is not None
                and observe(restored)["synopsis"] != reference["synopsis"]
            ):
                result.violations.append(
                    Violation(
                        "restore-equivalence",
                        "state_dict round-trip followed by identical input "
                        "diverged from the uninterrupted maintainer",
                        position=arrivals,
                    )
                )

        for batch in self._fuzzer().batches(
            self.total_points, max_batch=self.max_batch
        ):
            primary.extend(batch)
            self._split_extend(twin, batch)
            if restored is not None:
                restored.extend(batch)
            oracle.extend(batch)
            arrivals += batch.size

            if arrivals >= next_maintain:
                primary.maintain()
                twin.maintain()
                if restored is not None:
                    restored.maintain()
                next_maintain += self.maintain_every * (
                    (arrivals - next_maintain) // self.maintain_every + 1
                )

            if restored is None and arrivals >= restore_at:
                # Checkpoint metamorphic: a *real* JSON round-trip (the
                # same serialization the snapshot store performs), not
                # just an in-memory dict copy.  Maintain primary AND twin
                # first so the observation below does not advance the
                # primary's rebuild counters past the twin's.
                primary.maintain()
                twin.maintain()
                payload = json.loads(json.dumps(primary.state_dict()))
                restored = make_maintainer(self.backend, **self.params)
                restored.load_state_dict(payload)
                if observe(restored)["synopsis"] != observe(primary)["synopsis"]:
                    result.violations.append(
                        Violation(
                            "restore-identity",
                            "state_dict round-trip did not restore an "
                            "identical maintainer",
                            position=arrivals,
                        )
                    )
                if primary.supports_state_arrays:
                    # The binary snapshot fast path must be just as
                    # lossless as the JSON one: flatten to raw arrays,
                    # rebuild, compare answers.
                    skeleton, arrays = primary.state_arrays()
                    via_arrays = make_maintainer(self.backend, **self.params)
                    via_arrays.load_state_arrays(skeleton, arrays)
                    if (
                        observe(via_arrays)["synopsis"]
                        != observe(primary)["synopsis"]
                    ):
                        result.violations.append(
                            Violation(
                                "restore-identity-arrays",
                                "state_arrays round-trip did not restore "
                                "an identical maintainer",
                                position=arrivals,
                            )
                        )

            if arrivals >= next_check:
                check_now()
                next_check += self.check_every * (
                    (arrivals - next_check) // self.check_every + 1
                )

        primary.maintain()
        twin.maintain()
        if restored is not None:
            restored.maintain()
        check_now()
        return result
