"""Deterministic seeded stream fuzzing for differential certification.

:class:`StreamFuzzer` produces the value streams the
:class:`~repro.verify.differential.DifferentialChecker` drives through a
maintainer and its oracle in lockstep.  Two properties matter more than
variety:

* **Single-seed determinism.**  Every number -- values *and* batch
  boundaries -- comes from one ``numpy.random.Generator``, so a failing
  certification reproduces from ``(profile, seed)`` alone.
* **Integer-valued floats.**  All profiles emit whole numbers small
  enough that every prefix sum and sum of squares is exactly
  representable in float64.  That makes the metamorphic equivalences
  (``extend(a + b)`` vs ``extend(a); extend(b)``, checkpoint round-trips)
  *bit-exact* rather than approximately equal: any drift at all is a
  real associativity bug, not rounding noise.

Profiles cover the regimes the backends find easy and hard: ``uniform``
noise (many near-ties in the DP), ``zipf`` categorical skew (the
warehouse workload), ``sorted`` monotone ramps (adversarial for GK
summary compression), ``spike`` flat base with rare huge outliers
(adversarial for SSE -- one misplaced bucket boundary is catastrophic),
``permutation`` streams where every value is distinct (adversarial for
tie-breaking and rank logic), ``expiry`` alternating bursts and long
all-zero stretches (drives sliding-window synopses through complete
window expiry), and ``turnstile`` signed unit updates with ~40%
deletions in the :mod:`repro.counting.encoding` codec (strict
turnstile: the fuzzer tracks live frequencies so no key ever goes
negative).  ``turnstile`` is the one *signed* profile
(:data:`SIGNED_PROFILES`); insert-only backends cannot ingest it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamFuzzer", "PROFILES", "SIGNED_PROFILES"]

PROFILES = (
    "uniform",
    "zipf",
    "sorted",
    "spike",
    "permutation",
    "expiry",
    "turnstile",
)

#: Profiles that emit negative elements (encoded turnstile deletions);
#: only turnstile-capable backends can ingest these.
SIGNED_PROFILES = ("turnstile",)

#: turnstile profile: probability that a point deletes a live key.
_DELETE_PROB = 0.4

#: Spike height cap: 1e5 squared, summed over thousands of points, stays
#: well inside float64's exact-integer range (2^53).
_SPIKE_HEIGHT = 100_000.0


class StreamFuzzer:
    """Seeded generator of profiled, integer-valued stream batches.

    Parameters
    ----------
    profile:
        One of :data:`PROFILES`.
    seed:
        Everything derives from this one seed.
    high:
        Inclusive upper bound of the base value range (values are always
        non-negative, so every backend -- including the non-negative
        equi-depth summary and the domain-bounded dynamic wavelet -- can
        ingest every profile).  Spikes exceed ``high`` by design unless
        the profile is domain-bounded via ``clip_domain``.
    clip_domain:
        When set, every emitted value is clipped into
        ``[0, clip_domain - 1]`` (required by ``dynamic_wavelet``).
    """

    def __init__(
        self,
        profile: str,
        seed: int = 0,
        *,
        high: int = 100,
        clip_domain: int | None = None,
    ) -> None:
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; use one of {PROFILES}")
        if high < 1:
            raise ValueError("high must be >= 1")
        if clip_domain is not None and clip_domain < 1:
            raise ValueError("clip_domain must be >= 1 (or None)")
        self.profile = profile
        self.seed = int(seed)
        self.high = int(high)
        self.clip_domain = clip_domain
        self._rng = np.random.default_rng(self.seed)
        self._emitted = 0
        #: turnstile profile only: live frequencies, so deletions always
        #: target a key with positive count (strict turnstile).
        self._live: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Value generation
    # ------------------------------------------------------------------

    def _raw(self, size: int) -> np.ndarray:
        rng = self._rng
        if self.profile == "uniform":
            values = rng.integers(0, self.high + 1, size=size).astype(np.float64)
        elif self.profile == "zipf":
            values = np.minimum(
                rng.zipf(1.3, size=size), self.high
            ).astype(np.float64)
        elif self.profile == "sorted":
            values = np.sort(
                rng.integers(0, self.high + 1, size=size)
            ).astype(np.float64) + float(self._emitted % (self.high + 1))
        elif self.profile == "spike":
            values = rng.integers(0, 4, size=size).astype(np.float64)
            spikes = rng.random(size) < 0.03
            values[spikes] = rng.integers(
                _SPIKE_HEIGHT // 2, _SPIKE_HEIGHT, size=int(spikes.sum())
            ).astype(np.float64)
        elif self.profile == "expiry":
            # Bursts of values separated by all-zero stretches longer
            # than typical windows, so sliding-window structures expire
            # completely and must return to exact zero.
            index = np.arange(self._emitted, self._emitted + size)
            values = rng.integers(0, self.high + 1, size=size).astype(np.float64)
            values[(index % 160) < 96] = 0.0
        elif self.profile == "turnstile":
            return self._raw_turnstile(size)
        else:  # permutation: every value distinct within the chunk
            values = rng.permutation(size).astype(np.float64) + float(
                self._emitted
            )
        if self.clip_domain is not None:
            values = np.minimum(values, float(self.clip_domain - 1))
        return np.maximum(values, 0.0)

    def _raw_turnstile(self, size: int) -> np.ndarray:
        """Signed unit updates: insert ``key`` as ``key``, delete as
        ``-(key + 1)`` (the :mod:`repro.counting.encoding` codec)."""
        rng = self._rng
        values = np.empty(size, dtype=np.float64)
        for index in range(size):
            if self._live and rng.random() < _DELETE_PROB:
                keys = sorted(self._live)
                key = keys[int(rng.integers(len(keys)))]
                values[index] = -float(key + 1)
                count = self._live[key] - 1
                if count:
                    self._live[key] = count
                else:
                    del self._live[key]
            else:
                key = int(min(rng.zipf(1.4), self.high))
                values[index] = float(key)
                self._live[key] = self._live.get(key, 0) + 1
        return values

    def take(self, size: int) -> np.ndarray:
        """The next ``size`` stream values as one float64 array."""
        if size < 1:
            raise ValueError("size must be >= 1")
        values = self._raw(size)
        self._emitted += size
        return values

    def batches(
        self, total: int, *, min_batch: int = 1, max_batch: int = 48
    ):
        """Yield ``total`` points split into randomly sized batches.

        Batch boundaries come from the same generator as the values, so
        the full ingestion schedule is reproducible from the seed.
        """
        if total < 1:
            raise ValueError("total must be >= 1")
        if not (1 <= min_batch <= max_batch):
            raise ValueError("need 1 <= min_batch <= max_batch")
        remaining = total
        while remaining > 0:
            size = int(self._rng.integers(min_batch, max_batch + 1))
            size = min(size, remaining)
            yield self.take(size)
            remaining -= size
