"""Length-prefixed binary framing for the router <-> shard channels.

One frame is a fixed 19-byte header followed by the stream name and the
payload::

    !4sBQHI  =  magic b"RSH1" | kind u8 | seq u64 | name_len u16 | payload_len u32

* **DATA** frames carry one ingest batch: the payload is the raw
  little-endian-free ``float64`` buffer of the batch
  (:func:`encode_batch` / :func:`decode_batch`), so a 512-point chunk
  crosses the process boundary as one 4 KiB ``sendall`` instead of 512
  pickled floats.  ``seq`` is the shard-scoped frame sequence number the
  barrier protocol and crash replay are built on.
* **CONTROL** frames carry a verb in the name field and JSON keyword
  arguments in the payload (:func:`encode_obj` / :func:`decode_obj`).
* **REPLY** frames answer one control frame, echoing its ``seq``.

Framing errors (bad magic, unknown kind, oversized fields, a peer that
died mid-frame) raise :class:`FramingError`; a clean EOF at a frame
boundary returns ``None`` from :func:`recv_frame` instead.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Frame",
    "FramingError",
    "KIND_CONTROL",
    "KIND_DATA",
    "KIND_REPLY",
    "decode_batch",
    "decode_obj",
    "encode_batch",
    "encode_obj",
    "recv_frame",
    "send_frame",
]

MAGIC = b"RSH1"
HEADER = struct.Struct("!4sBQHI")

KIND_DATA = 1
KIND_CONTROL = 2
KIND_REPLY = 3
_KINDS = frozenset((KIND_DATA, KIND_CONTROL, KIND_REPLY))

#: Stream names are filenames too; 64 KiB of name is already absurd.
MAX_NAME = 0xFFFF
#: One frame carries one batch or one JSON document, never unbounded.
MAX_PAYLOAD = 1 << 30


class FramingError(RuntimeError):
    """The channel produced bytes that are not a well-formed frame."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    kind: int
    seq: int
    name: str
    payload: bytes


def encode_batch(batch) -> bytes:
    """An ingest batch as its raw contiguous ``float64`` buffer."""
    array = np.ascontiguousarray(np.asarray(batch, dtype=np.float64))
    return array.tobytes()


def decode_batch(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_batch` (zero-copy view over the bytes)."""
    if len(payload) % 8:
        raise FramingError(
            f"batch payload of {len(payload)} bytes is not a float64 buffer"
        )
    return np.frombuffer(payload, dtype=np.float64)


def encode_obj(obj) -> bytes:
    """JSON-encode a control verb's arguments or reply."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_obj(payload: bytes):
    """Inverse of :func:`encode_obj`."""
    if not payload:
        return None
    return json.loads(payload.decode("utf-8"))


def send_frame(sock, kind: int, seq: int, name: str, payload: bytes) -> None:
    """Write one frame; a single ``sendall`` keeps frames atomic-ish.

    Raises ``OSError`` when the peer is gone -- callers treat that as a
    shard (or router) death signal, not a framing problem.
    """
    name_bytes = name.encode("utf-8")
    if len(name_bytes) > MAX_NAME:
        raise FramingError(f"frame name too long ({len(name_bytes)} bytes)")
    if len(payload) > MAX_PAYLOAD:
        raise FramingError(f"frame payload too large ({len(payload)} bytes)")
    header = HEADER.pack(MAGIC, kind, seq, len(name_bytes), len(payload))
    sock.sendall(b"".join((header, name_bytes, payload)))


def _recv_exact(sock, count: int, *, at_boundary: bool) -> bytes | None:
    """Exactly ``count`` bytes, or None on a clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise FramingError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Frame | None:
    """Read one frame; ``None`` on clean EOF (peer closed the channel)."""
    header = _recv_exact(sock, HEADER.size, at_boundary=True)
    if header is None:
        return None
    magic, kind, seq, name_len, payload_len = HEADER.unpack(header)
    if magic != MAGIC:
        raise FramingError(f"bad frame magic {magic!r}")
    if kind not in _KINDS:
        raise FramingError(f"unknown frame kind {kind}")
    if payload_len > MAX_PAYLOAD:
        raise FramingError(f"frame payload too large ({payload_len} bytes)")
    body = _recv_exact(sock, name_len + payload_len, at_boundary=False) \
        if name_len + payload_len else b""
    name = body[:name_len].decode("utf-8")
    return Frame(kind=kind, seq=seq, name=name, payload=body[name_len:])
