"""The shard router: consistent-hash fan-out over N shard processes.

:class:`ShardRouter` is the multi-process tier of the service: it
satisfies the same :class:`~repro.service.protocol.ServiceProtocol` as
the threaded :class:`~repro.service.service.StreamService`, but hosts
every stream inside one of N forked **shard processes** (each running a
supervised ``StreamService`` of its own, see :mod:`repro.shard.host`).
Placement is a deterministic consistent-hash ring
(:class:`~repro.shard.placement.HashRing`) over stream names, so a
restored router routes every stream back to the shard that owns its
snapshots.

Ingest crosses the process boundary as length-prefixed binary frames
(one frame per batch, :mod:`repro.shard.framing`); queries, health,
metrics, checkpoints and certification travel as JSON control verbs
with per-request sequence numbers.  Observability is merged: shard
registries are serialized over the control channel and re-labeled with
``shard="<id>"`` (router-local metrics carry ``shard="router"``), so
``prometheus_metrics()`` is one exposition document for the whole
fleet.

**Shard failure** reuses the snapshot/restart machinery at shard
granularity.  The router retains every data frame since the oldest
retained checkpoint generation; when a shard process dies the monitor
thread respawns it after the :class:`~repro.service.supervisor.
RestartPolicy` backoff, restores it from its own SnapshotStore
directory, reconciles the stream set, and replays the retained frames
newer than the last checkpoint -- deterministic synopses plus identical
replay make the recovered shard bit-identical to one that never
crashed.  A shard that exhausts its restart budget is ``failed``;
producers get :class:`~repro.service.supervisor.StreamFailedError`.

Two deliberate semantic differences from the threaded tier:

* ``reject`` / ``drop_oldest`` backpressure refusals happen inside the
  shard and surface as worker counters, not producer exceptions (only
  ``block`` propagates, through the OS socket buffer).
* ``checkpoint(name)`` checkpoints the whole owning shard (every
  stream it hosts): replay retention is per shard, so its durable
  watermark must advance as one unit.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import threading
import time
from collections import deque
from dataclasses import replace
from pathlib import Path

from ..core.prefix import as_stream_batch
from ..counting.encoding import encode_update, encode_updates
from ..obs.export import samples_to_jsonl, samples_to_prometheus_text
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SpanRecord
from ..service.faults import FaultInjector
from ..service.qos import QoSConfig, QoSController
from ..service.queries import UnsupportedQueryError
from ..service.service import StreamSpec, UnknownStreamError, _valid_stream_name
from ..service.supervisor import RestartPolicy, StreamFailedError
from .breaker import CircuitBreaker
from .framing import (
    KIND_CONTROL,
    KIND_DATA,
    KIND_REPLY,
    FramingError,
    decode_obj,
    encode_obj,
    recv_frame,
    send_frame,
)
from .host import shard_main
from .placement import DEFAULT_VIRTUAL_NODES, HashRing

__all__ = [
    "ShardDownError",
    "ShardRemoteError",
    "ShardRouter",
    "ShardUnavailableError",
]

#: Router manifest filename inside the snapshot directory.
MANIFEST_NAME = "router.json"

#: Exceptions a shard raises that map back to local types at the router.
_REMOTE_ERRORS: dict[str, type[Exception]] = {
    "UnknownStreamError": UnknownStreamError,
    "UnsupportedQueryError": UnsupportedQueryError,
    "StreamFailedError": StreamFailedError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
}


#: Verbs allowed the full ``request_timeout``: they do real work whose
#: duration scales with hosted state (barriers, snapshots, fuzzing).
_LONG_VERBS = frozenset(
    {"flush", "checkpoint", "certify", "restore_report", "stop"}
)

#: Control deadlines in seconds for everything else, by how much work
#: the verb does shard-side; unlisted short verbs get _DEFAULT_DEADLINE.
#: A health probe against a wedged shard must fail in ~2 s, not 120.
VERB_DEADLINES: dict[str, float] = {
    "ping": 2.0,
    "health": 2.0,
    "stats": 5.0,
    "streams": 5.0,
    "spec": 5.0,
    "accuracy": 5.0,
    "dead_letters": 5.0,
    "note_shed": 5.0,
    "metrics": 10.0,
    "spans": 10.0,
    "range_sum": 10.0,
    "quantile": 10.0,
    "histogram": 10.0,
    "create_stream": 30.0,
    "drop_stream": 30.0,
    "retry_dead_letters": 30.0,
}

_DEFAULT_DEADLINE = 30.0

#: Verbs safe to resend after a timeout (read-only, or barriers whose
#: re-execution is a no-op).  Mutating verbs never retry: a timed-out
#: create may have applied, and resending would double-apply.
_IDEMPOTENT_VERBS = frozenset(
    {
        "ping",
        "health",
        "stats",
        "streams",
        "spec",
        "metrics",
        "spans",
        "accuracy",
        "dead_letters",
        "range_sum",
        "quantile",
        "histogram",
        "flush",
        "restore_report",
        "checkpoint",
    }
)


class ShardDownError(RuntimeError):
    """The owning shard is down and did not recover within the wait."""


class ShardRemoteError(RuntimeError):
    """A shard-side verb failed with a type the router does not map."""


class ShardUnavailableError(RuntimeError):
    """The shard's circuit breaker is open: it is wedged, not dead.

    The process is alive but its control plane stopped answering within
    deadline; callers fail fast until the half-open probe succeeds.
    """


class _ShardHandle:
    """Router-side state of one shard process."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.process = None
        self.data_sock = None
        self.ctrl_sock = None
        # send_lock orders data frames and guards the replay buffer;
        # ctrl_lock serializes request/reply pairs on the control channel.
        self.send_lock = threading.Lock()
        self.ctrl_lock = threading.Lock()
        self.next_seq = 1
        self.ctrl_seq = 0
        # Frames since the oldest retained checkpoint generation:
        # (seq, stream, per-stream submitted-point offset, payload).
        self.replay: deque[tuple[int, str, int, bytes]] = deque()
        self.checkpoint_seqs: deque[int] = deque(maxlen=2)
        # Barriers that wrote *full* (base) generations: replay frames
        # are only droppable once a base covers them -- a delta barrier
        # still needs every frame back to its base on a corrupt chain.
        self.base_seqs: deque[int] = deque(maxlen=2)
        self.deltas_since_base = 0
        self.arrivals_at_checkpoint: dict[str, int] = {}
        self.points_since_checkpoint = 0
        self.checkpoint_cadence: int | None = None
        self.checkpoint_pending = False
        self.state = "down"  # up / dead / recovering / failed / closed
        self.restarts = 0
        self.last_error: str | None = None
        self.lossy = False
        self.breaker: CircuitBreaker | None = None  # set by the router


class ShardRouter:
    """Multi-process synopsis service: router + N shard processes.

    Parameters
    ----------
    num_shards:
        Shard process count (the consistent-hash ring size).
    snapshot_dir:
        Base directory for durability; each shard gets its own
        ``shard-<id>/`` SnapshotStore underneath, the router writes a
        ``router.json`` manifest (specs + ring geometry) beside them.
        Without it, checkpointing is unavailable and crash recovery
        replays the full retained frame log from an empty shard.
    virtual_nodes:
        Ring points per shard (placement granularity).
    restart_policy:
        Shard-process respawn budget/backoff (defaults to
        :class:`RestartPolicy`'s defaults, same as worker supervision).
    snapshot_keep:
        Snapshot generations each shard retains; also bounds how far
        back the router keeps replay frames.
    snapshot_base_every:
        Delta-checkpoint cadence, forwarded to each shard's internal
        service: every K-th router checkpoint barrier forces full base
        snapshots, the barriers in between write binary deltas.  The
        router trims its replay buffer only at base barriers, so a
        truncated delta chain can always be re-derived from frames.
    supervise_workers:
        Whether each shard's internal service supervises its worker
        threads (on by default; shard *process* supervision is always on).
    """

    def __init__(
        self,
        num_shards: int = 4,
        snapshot_dir=None,
        *,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        restart_policy: RestartPolicy | None = None,
        snapshot_keep: int = 2,
        snapshot_base_every: int = 1,
        supervise_workers: bool = True,
        request_timeout: float = 120.0,
        recovery_wait: float = 30.0,
        ctrl_retries: int = 2,
        ctrl_backoff: float = 0.05,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        fault_injector: FaultInjector | None = None,
        qos: QoSConfig | QoSController | None = None,
        _restore: bool = False,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if snapshot_keep < 1:
            raise ValueError("snapshot_keep must be >= 1")
        if snapshot_base_every < 1:
            raise ValueError("snapshot_base_every must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ShardRouter needs the 'fork' start method (POSIX only)"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._snapshot_base = Path(snapshot_dir) if snapshot_dir else None
        self._snapshot_keep = int(snapshot_keep)
        self._snapshot_base_every = int(snapshot_base_every)
        self._supervise_workers = bool(supervise_workers)
        self._restart_policy = restart_policy or RestartPolicy()
        self._request_timeout = float(request_timeout)
        self._recovery_wait = float(recovery_wait)
        if ctrl_retries < 0:
            raise ValueError("ctrl_retries must be >= 0")
        self._ctrl_retries = int(ctrl_retries)
        self._ctrl_backoff = float(ctrl_backoff)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._injector = fault_injector
        self.registry = MetricsRegistry()
        if qos is None:
            self._qos = None
        elif isinstance(qos, QoSController):
            self._qos = qos
        else:
            self._qos = QoSController(qos, registry=self.registry)
        if self._qos is not None:
            self._qos.set_signal_source(self._qos_signals)
            self._qos.set_drained(self._qos_drained)
        self._send_latency = self.registry.histogram(
            "repro_router_send_seconds"
        )
        self._cond = threading.Condition()
        self._stop_event = threading.Event()
        self._closed = False

        restoring = bool(_restore and self._snapshot_base is not None)
        self._specs: dict[str, StreamSpec] = {}
        if restoring:
            manifest = self._read_manifest()
            num_shards = int(manifest["num_shards"])
            virtual_nodes = int(manifest["virtual_nodes"])
            self._specs = {
                name: StreamSpec.from_dict(spec)
                for name, spec in manifest["specs"].items()
            }
        self.num_shards = int(num_shards)
        self._ring = HashRing(range(self.num_shards), virtual_nodes)
        self._submitted: dict[str, int] = {}
        # Hot-path routing cache: stream -> (handle, points counter).
        self._route: dict[str, tuple[_ShardHandle, object]] = {}

        self._shards = {
            shard_id: _ShardHandle(shard_id)
            for shard_id in range(self.num_shards)
        }
        for handle in self._shards.values():
            handle.checkpoint_seqs = deque(maxlen=self._snapshot_keep)
            handle.base_seqs = deque(maxlen=self._snapshot_keep)
            handle.breaker = CircuitBreaker(
                shard=str(handle.shard_id),
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
                registry=self.registry,
            )
            self._spawn(handle, restore=restoring)
            handle.state = "up"
            self.registry.gauge(
                "repro_shard_up", shard=str(handle.shard_id)
            ).set(1)
        if restoring:
            self._reconcile_restored()
        for name in self._specs:
            self._cache_route(name)

        self._monitor_thread = threading.Thread(
            target=self._monitor, name="shard-router-monitor", daemon=True
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def _shard_dir(self, shard_id: int) -> str | None:
        if self._snapshot_base is None:
            return None
        return str(self._snapshot_base / f"shard-{shard_id}")

    def _spawn(self, handle: _ShardHandle, restore: bool) -> None:
        data_parent, data_child = socket.socketpair()
        ctrl_parent, ctrl_child = socket.socketpair()
        options = {
            "snapshot_dir": self._shard_dir(handle.shard_id),
            "supervise": self._supervise_workers,
            "snapshot_keep": self._snapshot_keep,
            "snapshot_base_every": self._snapshot_base_every,
            "restore": bool(restore),
            # The injector object crosses the fork (like the sockets),
            # so position-deterministic faults fire shard-side too.
            "fault_injector": self._injector,
        }
        process = self._ctx.Process(
            target=shard_main,
            args=(handle.shard_id, data_child, ctrl_child, options),
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        data_child.close()
        ctrl_child.close()
        ctrl_parent.settimeout(self._request_timeout)
        handle.process = process
        handle.data_sock = data_parent
        handle.ctrl_sock = ctrl_parent

    def _monitor(self) -> None:
        while not self._stop_event.wait(0.02):
            for handle in self._shards.values():
                state = handle.state
                if state == "dead" or (
                    state == "up" and not handle.process.is_alive()
                ):
                    self._recover(handle)

    def _note_dead(self, handle: _ShardHandle) -> None:
        with self._cond:
            if handle.state == "up":
                handle.state = "dead"
                self._cond.notify_all()
        # A dead process can answer nothing: open immediately so racing
        # control callers fail fast instead of each eating a deadline.
        handle.breaker.trip()

    def _await_up(self, handle: _ShardHandle) -> None:
        """Block until the shard is usable; raise when it never will be."""
        with self._cond:
            self._cond.wait_for(
                lambda: handle.state in ("up", "failed", "closed"),
                timeout=self._recovery_wait,
            )
            if handle.state == "up":
                return
            if handle.state == "failed":
                raise StreamFailedError(
                    f"shard {handle.shard_id} exhausted its restart budget "
                    f"({self._restart_policy.max_restarts}); "
                    f"last error: {handle.last_error}"
                )
            if handle.state == "closed":
                raise RuntimeError("router is closed")
            raise ShardDownError(
                f"shard {handle.shard_id} did not recover within "
                f"{self._recovery_wait:.0f}s (state {handle.state!r})"
            )

    def _recover(self, handle: _ShardHandle) -> None:
        """Respawn, restore, reconcile and replay one dead shard."""
        shard_id = handle.shard_id
        exitcode = handle.process.exitcode
        with self._cond:
            if handle.state in ("closed", "failed", "recovering"):
                return
            handle.state = "recovering"
            handle.last_error = f"shard process exited (code {exitcode})"
            self._cond.notify_all()
        # Monitor-detected deaths never pass through _note_dead; open
        # the breaker here too so control callers racing the respawn
        # fail fast instead of eating deadlines against a dead socket.
        handle.breaker.trip()
        self.registry.gauge("repro_shard_up", shard=str(shard_id)).set(0)
        if handle.restarts >= self._restart_policy.max_restarts:
            with self._cond:
                handle.state = "failed"
                self._cond.notify_all()
            return
        delay = self._restart_policy.delay(handle.restarts)
        handle.restarts += 1
        self.registry.counter(
            "repro_shard_restarts_total", shard=str(shard_id)
        ).inc()
        if self._stop_event.wait(delay):
            return
        try:
            # send_lock held across the whole swap: producers that raced
            # past the state check serialize behind the replay, so frame
            # order on the new channel stays monotone.
            with handle.send_lock:
                for sock in (handle.data_sock, handle.ctrl_sock):
                    try:
                        sock.close()
                    except OSError:
                        pass
                handle.process.join(timeout=5.0)
                self._spawn(
                    handle, restore=self._snapshot_base is not None
                )
                report = self._request_raw(handle, "restore_report", {})
                restored = {
                    name: int(count)
                    for name, count in report["arrivals"].items()
                }
                owned = {
                    name
                    for name in self._specs
                    if self._ring.owner(name) == shard_id
                }
                for name in sorted(set(report["streams"]) - owned):
                    self._request_raw(
                        handle, "drop_stream", {"name": name, "drain": False}
                    )
                for name in sorted(owned - set(report["streams"])):
                    self._request_raw(
                        handle,
                        "create_stream",
                        {"name": name, "spec": self._shard_spec(name)},
                    )
                exact = all(
                    restored.get(name, 0) == count
                    for name, count in handle.arrivals_at_checkpoint.items()
                )
                checkpoint_seq = (
                    handle.checkpoint_seqs[-1] if handle.checkpoint_seqs else 0
                )
                replayed = 0
                for seq, name, start, payload in handle.replay:
                    if name not in self._specs:
                        continue
                    if exact:
                        if seq <= checkpoint_seq:
                            continue
                    elif start < restored.get(name, 0):
                        continue
                    send_frame(handle.data_sock, KIND_DATA, seq, name, payload)
                    replayed += 1
                if not exact:
                    # The shard fell back past the newest generation (or
                    # restored nothing); offset-based replay is exact
                    # unless poison quarantine skewed arrival counts.
                    handle.lossy = True
                if handle.next_seq > 1:
                    # Watermark sync so pre-crash barriers resolve even
                    # when every retained frame was filtered out.
                    send_frame(
                        handle.data_sock, KIND_DATA, handle.next_seq - 1,
                        "", b"",
                    )
            self.registry.counter(
                "repro_router_replayed_frames_total", shard=str(shard_id)
            ).inc(replayed)
        except Exception as error:  # noqa: BLE001 - budget-bounded retry
            handle.last_error = repr(error)
            with self._cond:
                if handle.state == "recovering":
                    handle.state = "dead"  # monitor retries, budget permitting
                    self._cond.notify_all()
            return
        # Recovery talked to the respawned shard through _request_raw
        # (breaker-exempt); it answered, so close the breaker before
        # letting ordinary traffic back in.
        handle.breaker.reset()
        with self._cond:
            handle.state = "up"
            self._cond.notify_all()
        self.registry.gauge("repro_shard_up", shard=str(shard_id)).set(1)

    # ------------------------------------------------------------------
    # Control channel
    # ------------------------------------------------------------------

    def _verb_deadline(self, verb: str) -> float:
        """Per-verb control deadline, never above ``request_timeout``."""
        if verb in _LONG_VERBS:
            return self._request_timeout
        return min(VERB_DEADLINES.get(verb, _DEFAULT_DEADLINE),
                   self._request_timeout)

    def _request_raw(self, handle: _ShardHandle, verb: str, args: dict):
        """One request/reply on the control channel (no recovery retry).

        Applies the per-verb deadline; the reply loop's seq matching
        also skims off stale replies a previous timed-out request left
        behind, so one slow verb cannot poison the channel.
        """
        with handle.ctrl_lock:
            handle.ctrl_sock.settimeout(self._verb_deadline(verb))
            handle.ctrl_seq += 1
            seq = handle.ctrl_seq
            send_frame(
                handle.ctrl_sock, KIND_CONTROL, seq, verb, encode_obj(args)
            )
            while True:
                frame = recv_frame(handle.ctrl_sock)
                if frame is None:
                    raise FramingError(
                        f"shard {handle.shard_id} closed the control channel"
                    )
                if frame.kind == KIND_REPLY and frame.seq == seq:
                    break
        reply = decode_obj(frame.payload)
        if reply.get("ok"):
            return reply.get("value")
        error_type = reply.get("error_type", "")
        message = reply.get("error", "shard verb failed")
        raised = _REMOTE_ERRORS.get(error_type)
        if raised is not None:
            raise raised(message)
        raise ShardRemoteError(
            f"shard {handle.shard_id} {verb} failed: {error_type}: {message}"
        )

    def _request(self, handle: _ShardHandle, verb: str, args: dict):
        """Request with recovery ride-across, breaker gate, and bounded
        retry-with-backoff after timeouts (idempotent verbs only).

        A timeout means the shard is slow, not dead -- it feeds the
        breaker, never the dead-shard recovery path (respawning a live
        shard would lose its unsnapshot state for nothing).
        """
        attempt = 0
        while True:
            if handle.state != "up":
                self._await_up(handle)
            if not handle.breaker.allow():
                raise ShardUnavailableError(
                    f"shard {handle.shard_id} circuit breaker is open "
                    f"({verb!r} rejected); retry after "
                    f"{handle.breaker.reset_timeout:.1f}s"
                )
            try:
                result = self._request_raw(handle, verb, args)
            except TimeoutError:
                handle.breaker.record_failure()
                if verb in _IDEMPOTENT_VERBS and attempt < self._ctrl_retries:
                    time.sleep(self._ctrl_backoff * 2**attempt)
                    attempt += 1
                    continue
                raise
            except (OSError, FramingError):
                self._note_dead(handle)
            else:
                handle.breaker.record_success()
                return result

    def _owner_handle(self, name: str) -> _ShardHandle:
        if name not in self._specs:
            known = ", ".join(self.streams()) or "<none>"
            raise UnknownStreamError(
                f"no stream named {name!r}; hosted: {known}"
            )
        return self._shards[self._ring.owner(name)]

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------

    def _shard_spec(self, name: str) -> dict:
        """The spec a shard hosts: checkpoint cadence stays router-side.

        Shard-internal auto-checkpoints would write snapshot generations
        at sequence points the router never saw, breaking the
        seq <-> generation correspondence crash replay depends on; the
        router drives the cadence itself, shard-wide.
        """
        return replace(self._specs[name], checkpoint_every=None).to_dict()

    def _cache_route(self, name: str) -> None:
        handle = self._shards[self._ring.owner(name)]
        counter = self.registry.counter(
            "repro_router_ingested_points_total",
            stream=name,
            shard=str(handle.shard_id),
        )
        self._route[name] = (handle, counter)

    def _shard_cadence(self, handle: _ShardHandle) -> int | None:
        cadences = [
            spec.checkpoint_every
            for name, spec in self._specs.items()
            if spec.checkpoint_every is not None
            and self._ring.owner(name) == handle.shard_id
        ]
        return min(cadences) if cadences else None

    def create_stream(
        self,
        name: str,
        backend: str | None = None,
        params: dict | None = None,
        *,
        spec: StreamSpec | None = None,
        **options,
    ) -> None:
        """Register a stream on its owner shard (placement is hashed)."""
        if spec is None:
            if backend is None:
                raise ValueError("need either a spec or a backend name")
            spec = StreamSpec(backend=backend, params=dict(params or {}), **options)
        elif backend is not None or params is not None or options:
            raise ValueError("pass either spec or backend/params/options, not both")
        if self._closed:
            raise RuntimeError("router is closed")
        if not _valid_stream_name(name):
            raise ValueError(
                f"invalid stream name {name!r}; use letters, digits, '_' or '.'"
            )
        if name in self._specs:
            raise ValueError(f"stream {name!r} already exists")
        self._specs[name] = spec
        handle = self._shards[self._ring.owner(name)]
        try:
            if handle.state != "up":
                self._await_up(handle)
            self._request_raw(
                handle, "create_stream",
                {"name": name, "spec": self._shard_spec(name)},
            )
        except TimeoutError:
            # Slow shard: the create WAS sent and the control channel is
            # serial, so it will still apply; registration stands.
            handle.breaker.record_failure()
        except (OSError, FramingError) as error:
            # The shard died mid-create; recovery re-creates every owned
            # stream from the spec map, so registration stands.
            self._note_dead(handle)
            del error
        except Exception:
            del self._specs[name]
            raise
        self._submitted.setdefault(name, 0)
        self._cache_route(name)
        if self._qos is not None:
            self._qos.register_stream(name, spec.tenant, spec.priority)
        handle.checkpoint_cadence = self._shard_cadence(handle)
        self._write_manifest()

    def drop_stream(self, name: str, drain: bool = True) -> None:
        """Stop and forget a stream (its snapshots stay on disk)."""
        handle = self._owner_handle(name)
        self._request(handle, "drop_stream", {"name": name, "drain": drain})
        del self._specs[name]
        self._route.pop(name, None)
        self._submitted.pop(name, None)
        if self._qos is not None:
            self._qos.forget_stream(name)
        with handle.send_lock:
            handle.replay = deque(
                record for record in handle.replay if record[1] != name
            )
        handle.checkpoint_cadence = self._shard_cadence(handle)
        self._write_manifest()

    def streams(self) -> list[str]:
        """Hosted stream names, sorted."""
        return sorted(self._specs)

    def spec(self, name: str) -> StreamSpec:
        if name not in self._specs:
            self._owner_handle(name)  # raises UnknownStreamError
        return self._specs[name]

    def placement(self) -> dict[str, int]:
        """Owner shard id of every hosted stream."""
        return self._ring.assignments(self._specs)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, name: str, values) -> int:
        """Frame a batch to the owner shard; returns the accepted count.

        Safe from any thread.  ``block`` backpressure propagates through
        the socket buffer; ``reject``/``drop_oldest`` refusals happen
        inside the shard (visible in worker counters, never raised
        here).  A batch accepted while the shard is crashing is not
        lost: it sits in the replay buffer and recovery re-delivers it.

        With QoS configured, admission control runs *before* the frame
        is cut (quota refusals raise
        :class:`~repro.service.qos.QuotaExceededError`, ladder shedding
        thins the batch deterministically); a wedged shard whose
        breaker is open raises :class:`ShardUnavailableError` instead
        of blocking on its socket.
        """
        route = self._route.get(name)
        if route is None:
            self._owner_handle(name)  # raises UnknownStreamError
            route = self._route[name]
        handle, counter = route
        batch = as_stream_batch(values)
        shed = 0
        if self._qos is not None:
            batch, shed = self._qos.admit(name, batch)
        points = int(batch.size)
        if points == 0:
            if shed:
                self._note_shed_remote(handle, name, shed)
            return 0
        payload = batch.tobytes()
        if handle.state != "up":
            self._await_up(handle)
        if handle.breaker.blocked():
            raise ShardUnavailableError(
                f"shard {handle.shard_id} circuit breaker is open; "
                f"ingest for {name!r} rejected, retry after "
                f"{handle.breaker.reset_timeout:.1f}s"
            )
        send_failed = False
        with handle.send_lock:
            seq = handle.next_seq
            handle.next_seq = seq + 1
            start = self._submitted[name]
            self._submitted[name] = start + points
            handle.replay.append((seq, name, start, payload))
            handle.points_since_checkpoint += points
            checkpoint_due = (
                handle.checkpoint_cadence is not None
                and self._snapshot_base is not None
                and handle.points_since_checkpoint >= handle.checkpoint_cadence
                and not handle.checkpoint_pending
            )
            if checkpoint_due:
                handle.checkpoint_pending = True
            # A dropped frame stays in the replay buffer: the fault
            # models a send lost to a dying shard, recoverable only by
            # crash + replay.
            dropped = self._injector is not None and self._injector.on_frame(
                name, seq
            )
            if not dropped:
                started = time.perf_counter()
                try:
                    send_frame(handle.data_sock, KIND_DATA, seq, name, payload)
                except OSError:
                    send_failed = True
                else:
                    self._send_latency.observe(time.perf_counter() - started)
        counter.inc(points)
        if shed:
            self._note_shed_remote(handle, name, shed)
        if send_failed:
            if checkpoint_due:
                handle.checkpoint_pending = False
            self._note_dead(handle)
        elif checkpoint_due:
            try:
                self._checkpoint_shard(handle)
            except Exception:
                # Automatic checkpoints never fail the producer; the
                # miss is counted and the next cadence tries again.
                self.registry.counter(
                    "repro_checkpoint_errors_total",
                    shard=str(handle.shard_id),
                ).inc()
            finally:
                handle.checkpoint_pending = False
        return points

    def _note_shed_remote(
        self, handle: _ShardHandle, name: str, points: int
    ) -> None:
        """Tell the shard about router-side shed mass (best effort).

        The shard hosts the stream's accuracy monitor; shed points must
        widen its effective epsilon even though they never cross the
        data plane.  Best-effort by design: the router's own QoS
        counters are the system of record, and a wedged shard must not
        turn shed accounting into a stall.
        """
        if handle.state != "up" or handle.breaker.blocked():
            return
        try:
            self._request_raw(
                handle, "note_shed", {"name": name, "points": int(points)}
            )
        except TimeoutError:
            handle.breaker.record_failure()
        except (OSError, FramingError, ShardRemoteError, UnknownStreamError):
            pass

    def update(self, name: str, key: int, delta: int = 1) -> int:
        """Turnstile update ``f[key] += delta`` on a sharded stream.

        Encoded as signed unit points (:mod:`repro.counting.encoding`)
        and framed through the ordinary data plane, so ordering,
        replay, and shard recovery apply unchanged.
        """
        batch = encode_update(key, delta)
        if batch.size == 0:
            return 0
        return self.ingest(name, batch)

    def update_many(self, name: str, updates) -> int:
        """Apply ``(key, delta)`` turnstile updates as one batch."""
        batch = encode_updates(updates)
        if batch.size == 0:
            return 0
        return self.ingest(name, batch)

    def flush(self, name: str | None = None, timeout: float | None = None) -> bool:
        """Barrier + drain: every frame sent so far is fully ingested."""
        if name is not None:
            self._owner_handle(name)
        handles = self._involved(name)
        drained = True
        for handle in handles:
            with handle.send_lock:
                upto = handle.next_seq - 1
            result = self._request(
                handle, "flush",
                {"upto_seq": upto, "name": name, "timeout": timeout},
            )
            drained = bool(result) and drained
        return drained

    def _involved(self, name: str | None) -> list[_ShardHandle]:
        if name is not None:
            return [self._owner_handle(name)]
        shard_ids = sorted({self._ring.owner(n) for n in self._specs})
        return [self._shards[shard_id] for shard_id in shard_ids]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_sum(self, name: str, start: int, end: int) -> float:
        """Estimated sum over window positions ``[start, end]``."""
        return self._request(
            self._owner_handle(name), "range_sum",
            {"name": name, "start": int(start), "end": int(end)},
        )

    def quantile(self, name: str, fraction: float) -> float:
        """Approximate ``fraction``-quantile of the summarized values."""
        return self._request(
            self._owner_handle(name), "quantile",
            {"name": name, "fraction": float(fraction)},
        )

    def histogram(self, name: str) -> dict:
        """JSON-friendly rendering of the stream's synopsis."""
        return self._request(
            self._owner_handle(name), "histogram", {"name": name}
        )

    def stats(self, name: str | None = None) -> dict:
        """Ingest/maintenance/queue telemetry (one stream or all)."""
        if name is not None:
            return self._request(
                self._owner_handle(name), "stats", {"name": name}
            )
        merged: dict = {}
        for handle in self._involved(None):
            merged.update(self._request(handle, "stats", {}))
        return dict(sorted(merged.items()))

    def dead_letters(self, name: str) -> list[dict]:
        """Quarantined poison records (as dicts; they crossed a process)."""
        return self._request(
            self._owner_handle(name), "dead_letters", {"name": name}
        )

    def retry_dead_letters(self, name: str) -> dict:
        """Re-feed a stream's quarantined records; returns outcome counts.

        With QoS configured the retried mass re-enters admission at the
        router (all-or-nothing, like the threaded tier): refused while
        the ladder sheds the stream, charged to the tenant bucket
        otherwise.
        """
        handle = self._owner_handle(name)
        if self._qos is not None:
            pending = len(
                self._request(handle, "dead_letters", {"name": name})
            )
            if pending:
                self._qos.admit_retry(name, pending)
        return self._request(handle, "retry_dead_letters", {"name": name})

    # ------------------------------------------------------------------
    # QoS signals
    # ------------------------------------------------------------------

    def _qos_signals(self) -> dict:
        """Overload signals for the degradation ladder, router flavor.

        ``queue_fill`` is the fraction of shards not currently up (a
        down shard is a saturated queue from the producers' view);
        ``p99_latency`` is the p99 of data-frame send times -- socket
        sends only back up when shard-side queues do.
        """
        down = sum(
            1 for handle in self._shards.values() if handle.state != "up"
        )
        return {
            "queue_fill": down / self.num_shards,
            "p99_latency": self._send_latency.quantile(0.99),
        }

    def _qos_drained(self) -> bool:
        """Every shard answering again gates leaving ``stale_serve``."""
        return all(
            handle.state == "up" for handle in self._shards.values()
        )

    def qos(self) -> dict | None:
        """QoS snapshot: ladder level, tenant buckets, per-stream shed
        mass (None when QoS is not configured).  Forces a ladder
        evaluation, so polling this drives demotion on a quiet router.
        """
        if self._qos is None:
            return None
        return self._qos.snapshot()

    # ------------------------------------------------------------------
    # Health and observability
    # ------------------------------------------------------------------

    def health(self, name: str | None = None) -> dict:
        """Per-stream health (same shape as the threaded service, plus
        ``shard`` / ``shard_restarts``); a down shard renders every
        hosted stream ``degraded``, a failed one ``failed``."""
        if name is None:
            reports: dict = {}
            for handle in self._involved(None):
                if handle.state == "up":
                    try:
                        shard_reports = self._request_raw(handle, "health", {})
                    except TimeoutError:
                        # Slow, not dead: the wedged shard's streams
                        # render degraded and the breaker accumulates.
                        handle.breaker.record_failure()
                        shard_reports = None
                    except (OSError, FramingError):
                        self._note_dead(handle)
                        shard_reports = None
                else:
                    shard_reports = None
                for stream in self._specs:
                    if self._ring.owner(stream) != handle.shard_id:
                        continue
                    if shard_reports is not None and stream in shard_reports:
                        reports[stream] = self._annotate_health(
                            shard_reports[stream], handle
                        )
                    else:
                        reports[stream] = self._down_health(stream, handle)
            return dict(sorted(reports.items()))
        handle = self._owner_handle(name)
        if handle.state != "up":
            return self._down_health(name, handle)
        try:
            record = self._request_raw(handle, "health", {"name": name})
        except TimeoutError:
            # The regression contract: a hung shard fails health() in
            # ~the health deadline, never the flat request timeout --
            # and is NOT routed into dead-shard recovery (it is alive).
            handle.breaker.record_failure()
            raise
        except (OSError, FramingError):
            self._note_dead(handle)
            return self._down_health(name, handle)
        return self._annotate_health(record, handle)

    def _annotate_health(self, record: dict, handle: _ShardHandle) -> dict:
        record["shard"] = handle.shard_id
        record["shard_restarts"] = handle.restarts
        if handle.lossy:
            record["lossy_recovery"] = True
        if self._qos is not None:
            record["degradation"] = self._qos.level_name()
            if self._qos.serving_stale(record.get("stream", "")):
                # Intentional degradation: ingest is fully shed and
                # queries answer from the last materialized view.
                record["qos_shed"] = True
                record["stale_view"] = True
                if record.get("state") == "healthy":
                    record["state"] = "degraded"
        return record

    def _down_health(self, name: str, handle: _ShardHandle) -> dict:
        state = "failed" if handle.state == "failed" else "degraded"
        return {
            "stream": name,
            "state": state,
            "shard": handle.shard_id,
            "shard_restarts": handle.restarts,
            "restarts": handle.restarts,
            "last_error": handle.last_error,
            "lossy_recovery": handle.lossy,
            "stale_view": True,
            "queue_depth": 0,
        }

    def shard_states(self) -> dict[int, dict]:
        """Router-level view of every shard process."""
        return {
            handle.shard_id: {
                "state": handle.state,
                "restarts": handle.restarts,
                "last_error": handle.last_error,
                "breaker": handle.breaker.state_name(),
                "pid": handle.process.pid if handle.process else None,
                "streams": sorted(
                    name
                    for name in self._specs
                    if self._ring.owner(name) == handle.shard_id
                ),
            }
            for handle in self._shards.values()
        }

    def metrics(self, name: str | None = None) -> list[dict]:
        """Merged samples: router registry plus every live shard's,
        re-labeled with ``shard`` so series never collide."""
        samples = [
            {**sample, "labels": {**sample["labels"], "shard": "router"}}
            for sample in self.registry.collect()
        ]
        for handle in self._shards.values():
            if handle.state != "up":
                continue
            try:
                shard_samples = self._request_raw(handle, "metrics", {})
            except TimeoutError:
                handle.breaker.record_failure()
                continue
            except (OSError, FramingError):
                self._note_dead(handle)
                continue
            except (StreamFailedError, ShardDownError):
                continue
            samples.extend(
                {
                    **sample,
                    "labels": {
                        **sample["labels"], "shard": str(handle.shard_id)
                    },
                }
                for sample in shard_samples
            )
        if name is not None:
            samples = [
                sample
                for sample in samples
                if sample["labels"].get("stream") == name
            ]
        samples.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return samples

    def prometheus_metrics(self) -> str:
        """The whole fleet as one Prometheus exposition document."""
        return samples_to_prometheus_text(self.metrics())

    def export_metrics_jsonl(self, path) -> Path:
        """Append the merged samples to ``path`` as JSON lines."""
        path = Path(path)
        with open(path, "a") as stream:
            stream.write(samples_to_jsonl(self.metrics()))
        return path

    def spans(
        self, stage: str | None = None, name: str | None = None
    ) -> list[SpanRecord]:
        """Stage spans gathered from every shard, oldest first."""
        records: list[SpanRecord] = []
        for handle in self._involved(None):
            payload = self._request(
                handle, "spans", {"stage": stage, "name": name}
            )
            records.extend(SpanRecord(**span) for span in payload)
        records.sort(key=lambda record: record.started_at)
        return records

    def accuracy(self, name: str) -> dict | None:
        """The stream's accuracy-monitor summary (None if unconfigured)."""
        return self._request(
            self._owner_handle(name), "accuracy", {"name": name}
        )

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------

    def certify(self, name: str | None = None, **kwargs) -> dict:
        """Differential certification per shard + placement audit.

        With a ``name``: the owning shard runs the same three-layer
        :meth:`StreamService.certify` it would run in-process.  Without:
        every hosted stream is certified on its shard and the report
        adds the router-level placement-stability audit.
        """
        if name is not None:
            report = self._request(
                self._owner_handle(name), "certify",
                {"name": name, **kwargs},
            )
            report["shard"] = self._ring.owner(name)
            return report
        streams = {
            stream: self.certify(stream, **kwargs) for stream in self.streams()
        }
        placement = self.placement_audit()
        return {
            "passed": placement["passed"]
            and all(report["passed"] for report in streams.values()),
            "streams": streams,
            "placement": placement,
            "shards": self.shard_states(),
        }

    def placement_audit(self, probes: int = 256) -> dict:
        """Audit placement determinism and monotone ring stability.

        Checks that (1) every hosted stream lives on the shard the ring
        assigns it (no drifted placement), and (2) growing the ring by
        one shard moves keys *only* onto the new shard -- the
        consistent-hashing contract that bounds rebalancing.
        """
        keys = sorted(self._specs) + [f"probe_{i}" for i in range(probes)]
        new_shard = max(self._ring.shard_ids) + 1
        grown = HashRing(
            list(self._ring.shard_ids) + [new_shard],
            self._ring.virtual_nodes,
        )
        moved_within = [
            key
            for key in keys
            if grown.owner(key) not in (self._ring.owner(key), new_shard)
        ]
        moved_to_new = sum(1 for key in keys if grown.owner(key) == new_shard)
        misplaced = []
        for handle in self._involved(None):
            hosted = self._request(handle, "streams", {})
            misplaced.extend(
                stream
                for stream in hosted
                if self._ring.owner(stream) != handle.shard_id
            )
            misplaced.extend(
                stream
                for stream in self._specs
                if self._ring.owner(stream) == handle.shard_id
                and stream not in hosted
            )
        return {
            "passed": not moved_within and not misplaced,
            "keys_checked": len(keys),
            "moved_to_new_shard": moved_to_new,
            "moved_between_existing": moved_within,
            "misplaced_streams": sorted(set(misplaced)),
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, name: str | None = None) -> list[str]:
        """Durable snapshots at a router sequence barrier; returns paths.

        Shard-granular: naming a stream checkpoints every stream of its
        owning shard (replay retention advances per shard).  After each
        shard acknowledges, the router trims that shard's replay buffer
        to the oldest retained generation.
        """
        if self._snapshot_base is None:
            raise RuntimeError("router was created without a snapshot_dir")
        if name is not None:
            self._owner_handle(name)
        paths: list[str] = []
        for handle in self._involved(name):
            paths.extend(self._checkpoint_shard(handle))
        return paths

    def _checkpoint_shard(self, handle: _ShardHandle) -> list[str]:
        while True:
            if handle.state != "up":
                self._await_up(handle)
            with handle.send_lock:
                upto = handle.next_seq - 1
                # The shard decides delta-vs-full per stream, but the
                # router forces a full base when the delta cadence is
                # exhausted or no base barrier exists yet -- replay
                # frames may only be dropped once a *base* covers them.
                force_full = (
                    self._snapshot_base_every <= 1
                    or handle.deltas_since_base >= self._snapshot_base_every - 1
                    or not handle.base_seqs
                )
            try:
                reply = self._request_raw(
                    handle,
                    "checkpoint",
                    {"upto_seq": upto, "mode": "full" if force_full else "auto"},
                )
            except TimeoutError:
                handle.breaker.record_failure()
                raise
            except (OSError, FramingError):
                self._note_dead(handle)
                continue
            with handle.send_lock:
                handle.checkpoint_seqs.append(upto)
                if force_full:
                    handle.base_seqs.append(upto)
                    handle.deltas_since_base = 0
                else:
                    handle.deltas_since_base += 1
                handle.arrivals_at_checkpoint = {
                    stream: int(count)
                    for stream, count in reply["arrivals"].items()
                }
                if handle.base_seqs:
                    oldest = handle.base_seqs[0]
                    while handle.replay and handle.replay[0][0] <= oldest:
                        handle.replay.popleft()
                handle.points_since_checkpoint = 0
            return list(reply["paths"])

    def _manifest_path(self) -> Path:
        return self._snapshot_base / MANIFEST_NAME

    def _write_manifest(self) -> None:
        if self._snapshot_base is None:
            return
        self._snapshot_base.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": 1,
            "num_shards": self.num_shards,
            "virtual_nodes": self._ring.virtual_nodes,
            "specs": {
                name: spec.to_dict() for name, spec in self._specs.items()
            },
        }
        target = self._manifest_path()
        scratch = target.with_suffix(".tmp")
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(scratch, target)

    def _read_manifest(self) -> dict:
        manifest = self._manifest_path()
        if not manifest.exists():
            raise FileNotFoundError(
                f"no router manifest at {manifest}; nothing to restore"
            )
        return json.loads(manifest.read_text())

    def _reconcile_restored(self) -> None:
        """After a cold restore, align every shard with the manifest."""
        for handle in self._shards.values():
            report = self._request_raw(handle, "restore_report", {})
            restored = {
                stream: int(count)
                for stream, count in report["arrivals"].items()
            }
            owned = {
                stream
                for stream in self._specs
                if self._ring.owner(stream) == handle.shard_id
            }
            for stream in sorted(set(report["streams"]) - owned):
                self._request_raw(
                    handle, "drop_stream", {"name": stream, "drain": False}
                )
            for stream in sorted(owned - set(report["streams"])):
                self._request_raw(
                    handle,
                    "create_stream",
                    {"name": stream, "spec": self._shard_spec(stream)},
                )
            handle.arrivals_at_checkpoint = {
                stream: restored.get(stream, 0) for stream in owned
            }
            handle.checkpoint_cadence = self._shard_cadence(handle)
            for stream in owned:
                self._submitted[stream] = restored.get(stream, 0)

    @classmethod
    def restore(cls, snapshot_dir, **kwargs) -> "ShardRouter":
        """Bring a whole sharded service back from its snapshot tree.

        Ring geometry and stream specs come from the router manifest;
        each shard restores its internal service from its own
        SnapshotStore directory (with the store's generation fallback),
        so the recovered fleet converges to the state the stopped one
        had checkpointed, under identical placement.
        """
        return cls(snapshot_dir=snapshot_dir, _restore=True, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, checkpoint: bool | None = None) -> None:
        """Barrier, optionally checkpoint, and stop every shard
        (idempotent).  ``checkpoint=None`` means each shard takes its
        default final checkpoint when it has a snapshot store."""
        if self._closed:
            return
        self._closed = True
        self._stop_event.set()
        if self._monitor_thread.is_alive():
            self._monitor_thread.join(timeout=5.0)
        for handle in self._shards.values():
            process = handle.process
            if (
                process is not None
                and process.is_alive()
                and handle.state in ("up", "dead")
            ):
                try:
                    with handle.send_lock:
                        upto = handle.next_seq - 1
                    self._request_raw(
                        handle, "stop",
                        {"upto_seq": upto, "checkpoint": checkpoint},
                    )
                except (OSError, FramingError, TimeoutError, ShardRemoteError):
                    pass
            if process is not None:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=2.0)
            for sock in (handle.data_sock, handle.ctrl_sock):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            with self._cond:
                handle.state = "closed"
                self._cond.notify_all()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(checkpoint=False if exc_type else None)
