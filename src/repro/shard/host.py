"""The shard host: one process, one in-process StreamService.

:class:`ShardHost` is the child-process side of the sharded service;
:func:`shard_main` is the entry point the router forks for every shard.
A shard owns two channels back to the router:

* the **data channel** -- a dedicated thread applies framed ingest
  batches (:data:`~repro.shard.framing.KIND_DATA`) to the internal
  :class:`~repro.service.service.StreamService` in frame order and
  advances an *applied-sequence watermark* after each one.  The
  watermark is what the router's flush/checkpoint barriers wait on:
  "everything up to seq S has been handed to the workers".  An
  empty-name DATA frame is a pure watermark sync (sent after crash
  replay so barriers against pre-crash sequence numbers resolve).
* the **control channel** -- the main thread answers one JSON verb at a
  time (create/drop/query/health/metrics/checkpoint/...), each reply
  echoing the request's sequence number.

Backpressure crosses the process boundary through the OS socket buffer:
when the internal queues block the data thread, the router's ``sendall``
eventually blocks too, which is exactly the ``block`` policy producers
expect.  ``reject`` / ``drop_oldest`` streams never surface exceptions
across the boundary -- refusals happen inside the shard and are visible
through the same worker counters as in the threaded service.

The internal service runs supervised by default, so worker-thread
deaths inside a shard heal locally; whole-process deaths are the
router's job (respawn + restore + replay, see
:mod:`repro.shard.router`).
"""

from __future__ import annotations

import threading
from dataclasses import asdict

from ..service.service import StreamService, StreamSpec, UnknownStreamError
from ..service.stream_worker import BackpressureError, WorkerFailedError
from ..service.supervisor import RestartPolicy, StreamFailedError
from .framing import (
    KIND_DATA,
    KIND_REPLY,
    FramingError,
    decode_batch,
    decode_obj,
    encode_obj,
    recv_frame,
    send_frame,
)

__all__ = ["ShardHost", "shard_main"]

#: How long a shard-side barrier waits for the data thread to catch up
#: before the verb fails (the router's request timeout is longer).
BARRIER_TIMEOUT = 60.0

#: Ingest failures that are stream-local telemetry, not shard faults.
_REFUSALS = (
    UnknownStreamError,
    BackpressureError,
    StreamFailedError,
    WorkerFailedError,
    ValueError,
    RuntimeError,
)


class _Watermark:
    """Monotone applied-sequence counter the barrier verbs wait on."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._applied = 0
        self._closed = False

    def advance(self, seq: int) -> None:
        with self._cond:
            if seq > self._applied:
                self._applied = seq
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def applied(self) -> int:
        with self._cond:
            return self._applied

    def wait(self, seq: int, timeout: float = BARRIER_TIMEOUT) -> bool:
        with self._cond:
            return self._cond.wait_for(
                lambda: self._applied >= seq or self._closed, timeout=timeout
            ) and self._applied >= seq


def _build_service(options: dict) -> StreamService:
    policy = options.get("restart_policy")
    kwargs = dict(
        supervise=bool(options.get("supervise", True)),
        snapshot_keep=int(options.get("snapshot_keep", 2)),
        snapshot_base_every=int(options.get("snapshot_base_every", 1)),
        # The router's injector crosses the fork with the options, so
        # shard-internal ingest faults (slow/crash) stay schedulable.
        # QoS deliberately does NOT cross: admission already ran at the
        # router, and double-metering would shed admitted points twice.
        fault_injector=options.get("fault_injector"),
    )
    if policy is not None and kwargs["supervise"]:
        kwargs["restart_policy"] = RestartPolicy(**policy)
    snapshot_dir = options.get("snapshot_dir")
    if snapshot_dir and options.get("restore"):
        return StreamService.restore(snapshot_dir, **kwargs)
    return StreamService(snapshot_dir=snapshot_dir, **kwargs)


class ShardHost:
    """One shard process: an internal StreamService behind two channels."""

    def __init__(self, shard_id: int, data_sock, ctrl_sock, options: dict) -> None:
        self.shard_id = int(shard_id)
        self.service = _build_service(options)
        self._injector = options.get("fault_injector")
        self._data_sock = data_sock
        self._ctrl_sock = ctrl_sock
        self._watermark = _Watermark()
        self._stop_event = threading.Event()
        self._close_checkpoint: bool | None = None

    # -- data plane -----------------------------------------------------

    def _drain_data(self) -> None:
        """Apply DATA frames in order; advance the watermark after each."""
        refused = self.service.registry.counter(
            "repro_shard_refused_batches_total"
        )
        try:
            while True:
                frame = recv_frame(self._data_sock)
                if frame is None:
                    break
                if frame.kind != KIND_DATA:
                    continue
                if frame.name:
                    try:
                        self.service.ingest(
                            frame.name, decode_batch(frame.payload)
                        )
                    except _REFUSALS:
                        # Refusals are shard-local telemetry, never
                        # channel errors: the frame still advances the
                        # watermark so barriers cannot hang on it.
                        refused.inc()
                self._watermark.advance(frame.seq)
        except (FramingError, OSError):
            pass  # router gone; the control loop shuts the shard down
        finally:
            self._watermark.close()
            self._stop_event.set()

    # -- control plane --------------------------------------------------

    def _barrier(self, args: dict) -> None:
        upto = int(args.get("upto_seq", 0))
        if upto and not self._watermark.wait(upto):
            raise TimeoutError(
                f"shard {self.shard_id} barrier at seq {upto} timed out "
                f"(applied {self._watermark.applied})"
            )

    def _stream_arrivals(self) -> dict[str, int]:
        return {
            name: int(self.service.stats(name)["arrivals"])
            for name in self.service.streams()
        }

    def dispatch(self, verb: str, args: dict):
        """Answer one control verb against the internal service."""
        service = self.service
        if verb == "ping":
            return {
                "shard": self.shard_id,
                "applied_seq": self._watermark.applied,
            }
        if verb == "restore_report":
            # A restored service resubmits each snapshot's buffered tail
            # through the normal queues; drain first so the reported
            # arrival counts are the stable post-restore totals the
            # router compares against its checkpoint bookkeeping.
            service.flush()
            return {
                "streams": service.streams(),
                "arrivals": self._stream_arrivals(),
            }
        if verb == "create_stream":
            service.create_stream(
                args["name"], spec=StreamSpec.from_dict(args["spec"])
            )
            return None
        if verb == "drop_stream":
            service.drop_stream(args["name"], drain=args.get("drain", True))
            return None
        if verb == "streams":
            return service.streams()
        if verb == "spec":
            return service.spec(args["name"]).to_dict()
        if verb == "flush":
            # Unlike checkpoint, an unfinished flush is a False return
            # (threaded flush(timeout) semantics), not an error.
            upto = int(args.get("upto_seq", 0))
            timeout = args.get("timeout")
            wait = (
                BARRIER_TIMEOUT
                if timeout is None
                else min(float(timeout), BARRIER_TIMEOUT)
            )
            if upto and not self._watermark.wait(upto, wait):
                return False
            return service.flush(args.get("name"), timeout=timeout)
        if verb == "health":
            return service.health(args.get("name"))
        if verb == "stats":
            return service.stats(args.get("name"))
        if verb == "range_sum":
            return service.range_sum(
                args["name"], int(args["start"]), int(args["end"])
            )
        if verb == "quantile":
            return service.quantile(args["name"], float(args["fraction"]))
        if verb == "histogram":
            return service.histogram(args["name"])
        if verb == "accuracy":
            return service.accuracy(args["name"])
        if verb == "dead_letters":
            return [
                asdict(record) for record in service.dead_letters(args["name"])
            ]
        if verb == "retry_dead_letters":
            return service.retry_dead_letters(args["name"])
        if verb == "note_shed":
            service.note_shed(args["name"], int(args["points"]))
            return None
        if verb == "metrics":
            return service.registry.collect()
        if verb == "spans":
            return [
                asdict(span)
                for span in service.spans(args.get("stage"), args.get("name"))
            ]
        if verb == "certify":
            return service.certify(args.pop("name"), **args)
        if verb == "checkpoint":
            self._barrier(args)
            return {
                "paths": service.checkpoint(
                    args.get("name"), mode=args.get("mode", "auto")
                ),
                "applied_seq": self._watermark.applied,
                "arrivals": self._stream_arrivals(),
            }
        raise ValueError(f"unknown shard verb {verb!r}")

    def run(self) -> None:
        """Serve both channels until the router says stop (or dies)."""
        data_thread = threading.Thread(
            target=self._drain_data,
            name=f"shard-{self.shard_id}-data",
            daemon=True,
        )
        data_thread.start()
        try:
            while not self._stop_event.is_set():
                frame = recv_frame(self._ctrl_sock)
                if frame is None:
                    break
                verb = frame.name
                args = decode_obj(frame.payload) or {}
                if self._injector is not None:
                    # Scheduled control-plane faults (slow_control_at)
                    # fire here, before dispatch: the reply is delayed
                    # exactly like a wedged shard's would be.
                    self._injector.on_control(verb)
                stopping = verb == "stop"
                if stopping:
                    self._barrier({"upto_seq": args.get("upto_seq", 0)})
                    self._close_checkpoint = args.get("checkpoint")
                    reply = {"ok": True, "value": None}
                else:
                    try:
                        reply = {"ok": True, "value": self.dispatch(verb, args)}
                    except Exception as error:  # propagated to the router
                        reply = {
                            "ok": False,
                            "error": str(error) or repr(error),
                            "error_type": type(error).__name__,
                        }
                try:
                    send_frame(
                        self._ctrl_sock, KIND_REPLY, frame.seq, verb,
                        encode_obj(reply),
                    )
                except OSError:
                    break
                if stopping:
                    break
        except (FramingError, OSError):
            pass
        finally:
            try:
                self.service.close(checkpoint=self._close_checkpoint)
            finally:
                for sock in (self._data_sock, self._ctrl_sock):
                    try:
                        sock.close()
                    except OSError:
                        pass


def shard_main(shard_id: int, data_sock, ctrl_sock, options: dict) -> None:
    """Child-process entry point: run one shard to completion."""
    ShardHost(shard_id, data_sock, ctrl_sock, options).run()
