"""Per-shard circuit breaker for the router's control plane.

A wedged shard -- process alive, control thread stuck -- used to cost
every caller the full request timeout, serially, forever.  The breaker
turns that into fail-fast: after ``failure_threshold`` consecutive
control failures it *opens*, and callers get a typed
:class:`~repro.shard.router.ShardUnavailableError` immediately instead
of stalling on the socket.  After ``reset_timeout`` seconds one caller
is let through as a *half-open* probe; its success closes the breaker,
its failure re-opens it for another window.

The three states follow the classic pattern::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN --(reset_timeout elapsed, one probe)--> HALF_OPEN
    HALF_OPEN --(probe ok)--> CLOSED
    HALF_OPEN --(probe fails)--> OPEN

State is exported as the ``repro_breaker_state`` gauge (0 closed,
1 half-open, 2 open) and trips as the ``repro_breaker_trips_total``
counter, both labeled ``shard``.  ``clock`` is injectable so tests
drive the reset window deterministically.

The breaker watches *control* health only: data-plane frames keep
flowing to an open shard (the replay buffer makes them safe), and the
router's dead-shard recovery path bypasses the breaker entirely --
recovery must be able to talk to the respawned process while the
breaker is still open, and resets it once the shard is back up.
"""

from __future__ import annotations

import threading
import time

from ..obs.metrics import MetricsRegistry

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

STATE_CLOSED = 0
STATE_HALF_OPEN = 1
STATE_OPEN = 2

_STATE_NAMES = ("closed", "half_open", "open")

STATE_METRIC = "repro_breaker_state"
TRIPS_METRIC = "repro_breaker_trips_total"


class CircuitBreaker:
    """Consecutive-failure breaker guarding one shard's control channel."""

    def __init__(
        self,
        *,
        shard: str,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0 seconds")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        # At most one half-open probe is in flight at a time; everyone
        # else keeps failing fast until it reports back.
        self._probing = False
        registry = registry if registry is not None else MetricsRegistry()
        self._gauge = registry.gauge(STATE_METRIC, shard=shard)
        self._trips = registry.counter(TRIPS_METRIC, shard=shard)
        self._gauge.set(STATE_CLOSED)

    @property
    def state(self) -> int:
        with self._lock:
            return self._state

    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def allow(self) -> bool:
        """May this control request proceed?

        Closed: always.  Open: only once ``reset_timeout`` has elapsed,
        and then exactly one caller becomes the half-open probe.  The
        probe's :meth:`record_success` / :meth:`record_failure` decides
        what happens next; concurrent callers fail fast meanwhile.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._set(STATE_HALF_OPEN)
                self._probing = True
                return True
            # HALF_OPEN: admit nothing while the probe is out.
            if self._probing:
                return False
            self._probing = True
            return True

    def blocked(self) -> bool:
        """Is the breaker open with the reset window still running?

        A non-consuming check for paths that cannot act as a probe
        (data-plane sends have no reply to report back): it never
        transitions state, and once the window elapses it stops
        blocking so traffic resumes alongside the control-plane probe.
        """
        with self._lock:
            return (
                self._state == STATE_OPEN
                and self._clock() - self._opened_at < self.reset_timeout
            )

    def record_success(self) -> None:
        """A guarded request completed; close (and end any probe)."""
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != STATE_CLOSED:
                self._set(STATE_CLOSED)

    def record_failure(self) -> None:
        """A guarded request failed; trip on threshold or failed probe."""
        with self._lock:
            self._failures += 1
            if (
                self._state == STATE_HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._trip()

    def trip(self) -> None:
        """Open immediately (dead shard detected outside the breaker)."""
        with self._lock:
            self._trip()

    def reset(self) -> None:
        """Force-close (recovery finished rebuilding the shard)."""
        with self._lock:
            self._failures = 0
            self._probing = False
            self._set(STATE_CLOSED)

    def _trip(self) -> None:
        # Caller holds self._lock.
        self._failures = 0
        self._probing = False
        self._opened_at = self._clock()
        if self._state != STATE_OPEN:
            self._trips.inc()
            self._set(STATE_OPEN)
        else:
            # Re-tripping restarts the reset window but is not a new
            # outage for the trip counter.
            self._gauge.set(STATE_OPEN)

    def _set(self, state: int) -> None:
        self._state = state
        self._gauge.set(state)
