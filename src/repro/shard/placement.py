"""Consistent-hash placement of stream names onto shards.

:class:`HashRing` is the classic fixed-point ring: every shard
contributes ``virtual_nodes`` points derived from
``sha256(b"shard:<id>:<replica>")``, and a stream name is owned by the
first ring point clockwise of ``sha256(b"stream:<name>")``.  Hashes
come from :mod:`hashlib`, never the interpreter's randomized ``hash``,
so placement is identical across processes and Python runs -- a router
restored from a manifest routes every stream to the same shard that
checkpointed it.

The property the router's certification audits is **monotone
stability**: growing the ring from N to N+1 shards only reassigns keys
*to the new shard* -- no key moves between two pre-existing shards.
That bounds rebalancing traffic to the 1/(N+1) expected share the new
shard takes over, exactly the argument that makes consistent hashing
the right placement for independently constructible synopses (each
stream's summary lives entirely on its owner, so moving a key moves one
snapshot, nothing else).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

__all__ = ["HashRing"]

#: Virtual nodes per shard; 64 keeps the max/mean load ratio tight for
#: single-digit shard counts without bloating the ring.
DEFAULT_VIRTUAL_NODES = 64


def _point(data: bytes) -> int:
    """A ring position in [0, 2**64) from a stable cryptographic hash."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over integer shard ids."""

    def __init__(
        self,
        shard_ids: Sequence[int] | Iterable[int],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        ids = sorted({int(shard_id) for shard_id in shard_ids})
        if not ids:
            raise ValueError("need at least one shard")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shard_ids = ids
        self.virtual_nodes = int(virtual_nodes)
        points: list[tuple[int, int]] = []
        for shard_id in ids:
            for replica in range(self.virtual_nodes):
                points.append(
                    (_point(b"shard:%d:%d" % (shard_id, replica)), shard_id)
                )
        points.sort()
        self._points = [position for position, _ in points]
        self._owners = [shard_id for _, shard_id in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def owner(self, key: str) -> int:
        """The shard id owning ``key``."""
        position = _point(b"stream:" + key.encode("utf-8"))
        index = bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past 2**64 back to the first point
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> dict[str, int]:
        """Owner shard for every key."""
        return {key: self.owner(key) for key in keys}

    def load(self, keys: Iterable[str]) -> dict[int, int]:
        """Keys per shard (shards with zero keys included)."""
        counts = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
