"""repro.shard -- the multi-process tier of the synopsis service.

A :class:`ShardRouter` consistent-hashes stream names
(:class:`HashRing`) onto N forked :class:`ShardHost` processes, each
running a supervised in-process
:class:`~repro.service.service.StreamService` as its shard core.
Ingest batches cross the process boundary as length-prefixed binary
frames (:mod:`repro.shard.framing`); queries, health, merged metrics,
checkpoint/restore orchestration and certification travel as JSON
control verbs.  Shard-process crashes are healed with the same
snapshot-plus-replay machinery the threaded tier uses per worker,
applied at shard granularity -- recovery is bit-identical for
deterministic synopses.

Both tiers satisfy :class:`~repro.service.protocol.ServiceProtocol`;
see ``docs/API.md`` ("Sharded service") and the README sharded
quickstart.
"""

from .breaker import CircuitBreaker
from .framing import Frame, FramingError
from .host import ShardHost, shard_main
from .placement import HashRing
from .router import (
    ShardDownError,
    ShardRemoteError,
    ShardRouter,
    ShardUnavailableError,
)

__all__ = [
    "CircuitBreaker",
    "Frame",
    "FramingError",
    "HashRing",
    "ShardDownError",
    "ShardHost",
    "ShardRemoteError",
    "ShardRouter",
    "ShardUnavailableError",
    "shard_main",
]
