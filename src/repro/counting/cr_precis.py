"""CR-precis: deterministic turnstile frequency summary (Ganguly & Majumder).

All of the paper's synopses assume the cash-register model -- points
arrive and are never retracted.  The CR-precis structure serves the
*strict turnstile* model instead: a frequency vector ``f`` over a key
domain ``[0, M)`` evolves by ``update(key, delta)`` with deletions
allowed, as long as every frequency stays non-negative.

The summary is a table of ``t`` rows; row ``j`` holds ``p_j`` int64
counters where ``p_1 < p_2 < ... < p_t`` are the first ``t`` primes at
or above a configurable ``base``.  An update adds ``delta`` to cell
``key mod p_j`` of every row.  Because the rows are linear in ``f``,
deletions are handled for free, and the structure is fully
deterministic -- the same update multiset always yields the same table,
which the differential checker exploits for bit-exact comparisons.

Estimation rests on the Chinese Remainder Theorem: two distinct keys
``x != y`` with ``|x - y| < M`` can collide (``x = y mod p_j``) in at
most ``e = max{ m : p_1^m <= M - 1 }`` of the rows, because every
colliding row's prime divides ``x - y``.  Hence for a point query the
minimum cell over the rows overestimates ``f_x`` by at most
``(||f||_1 - f_x) * e / t`` and never underestimates it; heavy hitters
admit no false negatives, and range counts inherit the summed
per-point bound.  Space is ``O(t * p_t)`` counters with no dependence
on the number of distinct keys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CRPrecis", "first_primes"]


def first_primes(base: int, count: int) -> list[int]:
    """The first ``count`` primes greater than or equal to ``base``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    primes: list[int] = []
    candidate = max(2, int(base))
    while len(primes) < count:
        is_prime = candidate >= 2
        divisor = 2
        while divisor * divisor <= candidate:
            if candidate % divisor == 0:
                is_prime = False
                break
            divisor += 1
        if is_prime:
            primes.append(candidate)
        candidate += 1
    return primes


class CRPrecis:
    """Deterministic ``t``-row prime-modulus residue table.

    Parameters
    ----------
    rows:
        ``t``, the number of residue rows.  More rows divide the
        collision mass further: the point-query overestimate is at most
        ``(||f||_1 - f_x) * e / t``.
    base:
        Smallest admissible row modulus; the moduli are the first
        ``rows`` primes at or above it.  A larger base shrinks
        ``e = floor(log_base(M - 1))`` at the cost of wider rows.
    domain:
        ``M``; keys must lie in ``[0, M)``.

    The object doubles as the served synopsis: queries are pure reads
    and :meth:`to_dict` / :meth:`from_dict` round-trip the exact table.
    """

    def __init__(self, rows: int, base: int, domain: int) -> None:
        if rows < 1:
            raise ValueError("rows must be >= 1")
        if base < 2:
            raise ValueError("base must be >= 2")
        if domain < 2:
            raise ValueError("domain must be >= 2")
        self.rows = int(rows)
        self.base = int(base)
        self.domain = int(domain)
        self.primes = first_primes(self.base, self.rows)
        self.tables = [np.zeros(p, dtype=np.int64) for p in self.primes]
        #: Total unit updates applied: ``sum(|delta|)`` over the stream.
        self.updates = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        """Apply pre-validated int64 ``(keys, deltas)`` arrays in bulk."""
        for prime, table in zip(self.primes, self.tables):
            np.add.at(table, keys % prime, deltas)
        self.updates += int(np.abs(deltas).sum())

    def update(self, key: int, delta: int) -> None:
        """Apply one turnstile update ``f[key] += delta``."""
        key = int(key)
        delta = int(delta)
        if not 0 <= key < self.domain:
            raise ValueError(
                f"key {key} outside turnstile domain [0, {self.domain})"
            )
        if delta == 0:
            return
        for prime, table in zip(self.primes, self.tables):
            table[key % prime] += delta
        self.updates += abs(delta)

    # ------------------------------------------------------------------
    # Queries (pure)
    # ------------------------------------------------------------------

    def l1(self) -> int:
        """``||f||_1`` -- exact in the strict turnstile model, since
        every row sums to the same total mass."""
        return int(self.tables[0].sum())

    def point_query(self, key: int) -> int:
        """Overestimate of ``f[key]``: min cell over the rows."""
        key = int(key)
        if not 0 <= key < self.domain:
            raise ValueError(
                f"key {key} outside turnstile domain [0, {self.domain})"
            )
        return int(
            min(int(table[key % prime]) for prime, table in zip(self.primes, self.tables))
        )

    def point_estimates(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`point_query` over an int64 key array."""
        keys = np.asarray(keys, dtype=np.int64)
        return np.minimum.reduce(
            [table[keys % prime] for prime, table in zip(self.primes, self.tables)]
        )

    def error_exponent(self) -> int:
        """``e = max{ m : p_1^m <= domain - 1 }`` -- the maximum number
        of rows in which two distinct in-domain keys can collide."""
        exponent = 0
        power = 1
        while power * self.primes[0] <= self.domain - 1:
            power *= self.primes[0]
            exponent += 1
        return exponent

    def overestimate_bound(self, true_frequency: int = 0) -> float:
        """Deterministic bound on ``point_query(x) - f_x``."""
        return (self.l1() - int(true_frequency)) * self.error_exponent() / self.rows

    def heavy_hitters(self, phi: float) -> dict[int, int]:
        """Keys whose estimate reaches ``phi * ||f||_1``.

        Every key with true frequency at or above the threshold is
        reported (estimates never underestimate); reported estimates
        exceed true frequencies by at most :meth:`overestimate_bound`.
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError("phi must be in (0, 1]")
        threshold = max(1.0, phi * self.l1())
        keys = np.arange(self.domain, dtype=np.int64)
        estimates = self.point_estimates(keys)
        hot = np.nonzero(estimates >= threshold)[0]
        return {int(key): int(estimates[key]) for key in hot}

    def range_count(self, low: int, high: int) -> int:
        """Overestimate of ``sum(f[low..high])`` (inclusive ends)."""
        low = int(low)
        high = int(high)
        if not 0 <= low <= high < self.domain:
            raise ValueError(
                f"range [{low}, {high}] outside turnstile domain [0, {self.domain})"
            )
        keys = np.arange(low, high + 1, dtype=np.int64)
        return int(self.point_estimates(keys).sum())

    def table_cells(self) -> int:
        """Total counters stored (the space footprint)."""
        return int(sum(self.primes))

    # ------------------------------------------------------------------
    # Serialization (exact integers; JSON round-trips bit-exactly)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "rows": self.rows,
            "base": self.base,
            "domain": self.domain,
            "updates": self.updates,
            "tables": [table.tolist() for table in self.tables],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CRPrecis":
        summary = cls(
            int(payload["rows"]), int(payload["base"]), int(payload["domain"])
        )
        summary.updates = int(payload["updates"])
        restored = [np.asarray(row, dtype=np.int64) for row in payload["tables"]]
        if [len(row) for row in restored] != summary.primes:
            raise ValueError("CR-precis payload rows do not match the moduli")
        summary.tables = restored
        return summary
