"""Sliding-window and turnstile synopses (``eh_count`` / ``cr_precis``).

This subsystem opens the two stream models the paper's insert-only
synopses cannot express:

* **Sliding-window counting** -- :class:`ExponentialHistogram` (Datar
  et al. exponential histograms): eps-relative nonzero count and sum
  over the last ``n`` arrivals, with windowed mean/variance on top.
* **Strict turnstile** -- :class:`CRPrecis` (Ganguly & Majumder):
  deterministic point-query / heavy-hitter / range-count estimates for
  update streams with deletions.

The Maintainer adapters register as ``"eh_count"`` and ``"cr_precis"``
in :mod:`repro.runtime.registry`; turnstile updates cross the serving
stack via the signed-unit float codec in :mod:`repro.counting.encoding`.
"""

from .adapters import CRPrecisMaintainer, EHCountMaintainer
from .cr_precis import CRPrecis, first_primes
from .eh import BasicCountingEH, ExponentialHistogram
from .encoding import decode_updates, encode_update, encode_updates

__all__ = [
    "BasicCountingEH",
    "CRPrecis",
    "CRPrecisMaintainer",
    "EHCountMaintainer",
    "ExponentialHistogram",
    "decode_updates",
    "encode_update",
    "encode_updates",
    "first_primes",
]
