"""Signed-float codec carrying turnstile updates over value streams.

The entire serving stack -- queues, snapshots, replay logs, shard
frames -- moves 1-D float64 batches.  Rather than teach every layer a
second payload type, turnstile updates ride the existing channel with a
per-element encoding: an insert of ``key`` travels as ``float(key)``
and a deletion as ``-(key + 1)`` (the shift keeps key 0 encodable).
Each element is a self-contained unit update, so a batch can be split,
replayed, or checkpointed at any boundary without corrupting a
multi-element record -- the property the differential checker's
split-batch twin exercises deliberately.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["encode_update", "encode_updates", "decode_updates"]


def encode_update(key: int, delta: int) -> np.ndarray:
    """Encode ``f[key] += delta`` as ``|delta|`` signed unit elements."""
    key = int(key)
    delta = int(delta)
    if key < 0:
        raise ValueError("turnstile keys must be non-negative")
    if delta == 0:
        return np.empty(0, dtype=np.float64)
    value = float(key) if delta > 0 else -float(key + 1)
    return np.full(abs(delta), value, dtype=np.float64)

def encode_updates(updates: Iterable[tuple[int, int]]) -> np.ndarray:
    """Encode ``(key, delta)`` pairs into one flat unit-update batch."""
    parts = [encode_update(key, delta) for key, delta in updates]
    if not parts:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(parts)


def decode_updates(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode a float batch into int64 ``(keys, deltas)`` unit updates.

    Values are rounded to integers first (the fuzzer and codec only
    emit integer-valued floats); negatives decode to deletions.
    """
    encoded = np.rint(np.asarray(batch, dtype=np.float64)).astype(np.int64)
    negative = encoded < 0
    keys = np.where(negative, -encoded - 1, encoded)
    deltas = np.where(negative, np.int64(-1), np.int64(1))
    return keys, deltas
