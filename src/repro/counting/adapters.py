"""Maintainer adapters for the sliding-window and turnstile synopses.

``"eh_count"`` hosts an :class:`~repro.counting.eh.ExponentialHistogram`
(sliding-window counting over the last ``n`` arrivals) and
``"cr_precis"`` a :class:`~repro.counting.cr_precis.CRPrecis`
(turnstile frequencies with deletions).  Both speak the
:class:`~repro.runtime.maintainer.UpdateMaintainer` contract: the
turnstile backend takes signed deltas, the windowed backend takes
``update(value, count)`` as "``count`` more arrivals of ``value``" and
rejects negative deltas -- a sliding window cannot retract an arrival.

On the ``extend`` channel (the one queues, snapshots, and shard frames
use) ``eh_count`` consumes plain non-negative integer-valued batches,
while ``cr_precis`` decodes the per-element signed-unit turnstile
encoding of :mod:`repro.counting.encoding`.
"""

from __future__ import annotations

import numpy as np

from ..core.prefix import as_stream_batch
from ..runtime.maintainer import UpdateMaintainer
from .cr_precis import CRPrecis
from .eh import ExponentialHistogram
from .encoding import decode_updates

__all__ = ["EHCountMaintainer", "CRPrecisMaintainer"]


class EHCountMaintainer(UpdateMaintainer):
    """Sliding-window counting over the last ``window`` arrivals."""

    supports_state_arrays = True

    def __init__(
        self, window: int, epsilon: float, name: str | None = None
    ) -> None:
        super().__init__(name or f"eh_count(n={window}, eps={epsilon:g})")
        self._eh = ExponentialHistogram(window, epsilon)

    @property
    def backend(self) -> ExponentialHistogram:
        return self._eh

    def _ingest_batch(self, batch: np.ndarray) -> None:
        # Raw float64 arrays bypass the base class's as_stream_batch
        # normalization; re-validate shape and finiteness here.
        batch = as_stream_batch(batch)
        values = np.rint(batch).astype(np.int64)
        if values.size and values.min() < 0:
            raise ValueError(
                "sliding-window counting is insert-only: values must be"
                " non-negative (deletions are a turnstile concept; use"
                " the cr_precis backend)"
            )
        self._eh.extend(values)

    def _update(self, key: int, delta: int) -> None:
        if key < 0:
            raise ValueError("windowed counting takes non-negative values")
        if delta < 0:
            raise ValueError(
                "sliding-window counting is insert-only: update() deltas"
                " must be positive (arrivals cannot be retracted)"
            )
        self._eh.extend(np.full(delta, key, dtype=np.int64))

    def synopsis(self) -> ExponentialHistogram:
        return self._eh

    def _state_dict(self) -> dict:
        return {"eh": self._eh.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self._eh = ExponentialHistogram.from_dict(state["eh"])


class CRPrecisMaintainer(UpdateMaintainer):
    """Deterministic CR-precis turnstile frequency summary."""

    supports_state_arrays = True

    def __init__(
        self, rows: int, base: int, domain: int, name: str | None = None
    ) -> None:
        super().__init__(
            name or f"cr_precis(t={rows}, base={base}, M={domain})"
        )
        self._table = CRPrecis(rows, base, domain)

    @property
    def backend(self) -> CRPrecis:
        return self._table

    def _ingest_batch(self, batch: np.ndarray) -> None:
        batch = as_stream_batch(batch)
        keys, deltas = decode_updates(batch)
        if keys.size and int(keys.max()) >= self._table.domain:
            raise ValueError(
                f"key {int(keys.max())} outside turnstile domain"
                f" [0, {self._table.domain})"
            )
        self._table.apply(keys, deltas)

    def _update(self, key: int, delta: int) -> None:
        # CRPrecis.update validates the key before touching any row.
        self._table.update(key, delta)

    def synopsis(self) -> CRPrecis:
        return self._table

    def _state_dict(self) -> dict:
        return {"table": self._table.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self._table = CRPrecis.from_dict(state["table"])
