"""Exponential histograms: sliding-window counting and sums (Datar et al.).

The paper's synopses all summarize an insert-only value stream; this
module opens the *sliding-window counting* model: maintain, over the
last ``n`` arrivals only, an eps-relative count of the nonzero points
and an eps-relative windowed sum (plus exact-denominator mean and a
bounded variance), in ``O((1/eps) log^2 n)`` space.

:class:`BasicCountingEH` is the Datar-Gionis-Indyk-Motwani structure
for a 0/1 stream: buckets of power-of-two sizes, at most
``ceil(k/2) + 1`` per size class with ``k = ceil(1/eps)``, merged
oldest-first when a class overflows.  Two deliberate departures from
the usual textbook (and exemplar) implementations:

* **Arrival indices, not wall-clock timestamps.**  Every bucket is
  stamped with the arrival index of its most recent element.  Python
  integers never overflow and the index never wraps, so a stream that
  runs for days (or a maintainer restored at arrival ``10**12``)
  behaves exactly like a fresh one -- the exemplar's "recycle
  timestamps" TODO cannot arise.
* **A sharpened estimate with an unconditional eps guarantee.**  The
  textbook estimate ``total - oldest/2`` breaks the relative bound for
  small windows and small eps (the exemplar skips its own bound check
  at ``eps=0.01, n=100``).  We return ``total - (oldest - 1) / 2``:
  the oldest live bucket always contributes at least one in-window
  element (otherwise it would have expired), so the true count ``C``
  lies in ``[total - oldest + 1, total]`` and the midpoint is off by
  at most ``(oldest - 1) / 2``.  A size-1 oldest bucket makes the
  estimate *exact*; for ``oldest = 2^r`` the class invariant (every
  smaller class holds at least ``ceil(k/2)`` newer buckets while a
  larger bucket lives) gives ``C >= 1 + ceil(k/2) * (2^r - 1)``, so
  the relative error is strictly below ``1 / (2 * ceil(k/2)) <= eps``
  in every regime, including ``eps=0.01, n=100``.

:class:`ExponentialHistogram` composes per-bit ``BasicCountingEH``
banks into a windowed value summary: a nonzero-count bank plus one
bank per bit of the values and of their squares.  A windowed sum is
``sum_j 2^j * count_j``; each bank is eps-relative on its own bit
count, so the composed sum inherits the eps-relative bound, and the
windowed mean divides by the *exact* window length ``min(n, N)``.

Expiry is lazy but deterministic: buckets are pruned only during
``add`` (before merging) and filtered arithmetically by every
estimate, so the structure's state is a pure function of the arrival
count -- batch chunking, checkpoint round-trips and replay all
preserve it bit-exactly, which the differential checker
(:mod:`repro.verify`) requires.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BasicCountingEH", "ExponentialHistogram"]


class BasicCountingEH:
    """DGIM basic counting of 1-bits over the last ``window`` arrivals.

    The clock is external: callers pass the arrival index of each 1-bit
    to :meth:`add` (0-bits advance the clock implicitly -- the structure
    never needs to see them) and the current arrival count to
    :meth:`estimate`.  That lets :class:`ExponentialHistogram` share one
    clock across dozens of bit banks without touching banks whose bit
    is zero.
    """

    __slots__ = ("window", "k", "max_per_class", "buckets")

    def __init__(self, window: int, epsilon: float) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        self.window = int(window)
        self.k = math.ceil(1.0 / float(epsilon))
        # ceil(k/2) + 1 buckets per size class; one more triggers a merge.
        self.max_per_class = (self.k + 1) // 2 + 1
        #: Oldest first; each bucket is ``[size, last_arrival_index]``
        #: with ``size`` a power of two and sizes nonincreasing toward
        #: the new end.
        self.buckets: list[list[int]] = []

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add(self, now: int) -> None:
        """Record a 1-bit at arrival index ``now`` (1-based)."""
        buckets = self.buckets
        cutoff = now - self.window
        while buckets and buckets[0][1] <= cutoff:
            buckets.pop(0)
        buckets.append([1, now])
        size = 1
        while True:
            first = -1
            count = 0
            for index in range(len(buckets) - 1, -1, -1):
                bucket_size = buckets[index][0]
                if bucket_size == size:
                    first = index
                    count += 1
                elif bucket_size > size:
                    break
            if count <= self.max_per_class:
                break
            # Merge the two oldest buckets of this class; the merged
            # bucket keeps the newer timestamp and lands exactly at the
            # class boundary, so size ordering is preserved.
            newer = buckets[first + 1]
            buckets[first] = [size * 2, newer[1]]
            del buckets[first + 1]
            size *= 2

    # ------------------------------------------------------------------
    # Queries (pure: never mutate, filter expired buckets arithmetically)
    # ------------------------------------------------------------------

    def estimate(self, now: int) -> float:
        """eps-relative estimate of the 1-bits among the last ``window``."""
        cutoff = now - self.window
        total = 0
        oldest = 0
        for size, stamp in self.buckets:
            if stamp > cutoff:
                if oldest == 0:
                    oldest = size
                total += size
        if oldest == 0:
            return 0.0
        return total - (oldest - 1) / 2.0

    def error_bound(self, now: int) -> float:
        """The absolute error bound of :meth:`estimate` right now."""
        cutoff = now - self.window
        for size, stamp in self.buckets:
            if stamp > cutoff:
                return (size - 1) / 2.0
        return 0.0

    def bucket_count(self, live_only: bool = False, now: int = 0) -> int:
        if not live_only:
            return len(self.buckets)
        cutoff = now - self.window
        return sum(1 for _, stamp in self.buckets if stamp > cutoff)

    # ------------------------------------------------------------------
    # Serialization (exact integers; JSON round-trips bit-exactly)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "k": self.k,
            "buckets": [[int(size), int(stamp)] for size, stamp in self.buckets],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BasicCountingEH":
        core = cls(int(payload["window"]), 1.0)
        core.k = int(payload["k"])
        core.max_per_class = (core.k + 1) // 2 + 1
        core.buckets = [
            [int(size), int(stamp)] for size, stamp in payload["buckets"]
        ]
        return core


class ExponentialHistogram:
    """Windowed count/sum/mean/variance of a non-negative integer stream.

    One :class:`BasicCountingEH` bank counts the nonzero arrivals; one
    bank per bit position of the values estimates the windowed sum
    (``sum_j 2^j * count_j`` -- each bank is eps-relative on its bit
    count, so the sum is eps-relative too); a second bank family over
    the squared values supports the windowed variance.  Banks are
    created lazily the first time their bit is set, so small-valued
    streams stay small.

    This object is also the served synopsis: estimates are pure reads,
    and :meth:`to_dict` / :meth:`from_dict` round-trip the exact state
    (the service layer's freeze/checkpoint path).
    """

    def __init__(self, window: int, epsilon: float) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        self.window = int(window)
        self.epsilon = float(epsilon)
        self.arrivals = 0
        self._nonzero = BasicCountingEH(self.window, self.epsilon)
        self._sum_banks: list[BasicCountingEH] = []
        self._sq_banks: list[BasicCountingEH] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def _bank(self, banks: list[BasicCountingEH], bit: int) -> BasicCountingEH:
        while len(banks) <= bit:
            banks.append(BasicCountingEH(self.window, self.epsilon))
        return banks[bit]

    def append(self, value: int) -> None:
        """Consume one non-negative integer arrival."""
        value = int(value)
        if value < 0:
            raise ValueError("windowed counting takes non-negative values")
        now = self.arrivals + 1
        self.arrivals = now
        if value:
            self._nonzero.add(now)
            remaining = value
            bit = 0
            while remaining:
                if remaining & 1:
                    self._bank(self._sum_banks, bit).add(now)
                remaining >>= 1
                bit += 1
            remaining = value * value
            bit = 0
            while remaining:
                if remaining & 1:
                    self._bank(self._sq_banks, bit).add(now)
                remaining >>= 1
                bit += 1

    def extend(self, values: np.ndarray) -> None:
        """Consume a validated batch of non-negative int64 values."""
        for value in values.tolist():
            self.append(value)

    # ------------------------------------------------------------------
    # Windowed estimates
    # ------------------------------------------------------------------

    def window_count(self) -> int:
        """Exact number of arrivals in the window: ``min(n, N)``."""
        return min(self.window, self.arrivals)

    def nonzero_count(self) -> float:
        """eps-relative count of nonzero arrivals in the window."""
        return self._nonzero.estimate(self.arrivals)

    def window_sum(self) -> float:
        """eps-relative sum of the windowed values."""
        now = self.arrivals
        return float(
            sum(
                (1 << bit) * bank.estimate(now)
                for bit, bank in enumerate(self._sum_banks)
            )
        )

    def window_sum_squares(self) -> float:
        """eps-relative sum of squared windowed values."""
        now = self.arrivals
        return float(
            sum(
                (1 << bit) * bank.estimate(now)
                for bit, bank in enumerate(self._sq_banks)
            )
        )

    def window_mean(self) -> float:
        """Windowed mean: eps-relative sum over the exact window length."""
        length = self.window_count()
        if length == 0:
            return 0.0
        return self.window_sum() / length

    def window_variance(self) -> float:
        """Windowed population variance via the two moment estimates.

        ``m2/L - mean^2`` with both moments eps-relative and ``L``
        exact; the absolute error is bounded by
        ``eps * m2 / L + (2 eps + eps^2) * mean^2``.
        """
        length = self.window_count()
        if length == 0:
            return 0.0
        mean = self.window_mean()
        return max(0.0, self.window_sum_squares() / length - mean * mean)

    def sum_error_bound(self) -> float:
        """Absolute error bound of :meth:`window_sum` right now."""
        now = self.arrivals
        return float(
            sum(
                (1 << bit) * bank.error_bound(now)
                for bit, bank in enumerate(self._sum_banks)
            )
        )

    def bucket_cells(self) -> int:
        """Total stored buckets across all banks (the space footprint)."""
        return self._nonzero.bucket_count() + sum(
            bank.bucket_count() for bank in self._sum_banks + self._sq_banks
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "epsilon": self.epsilon,
            "arrivals": self.arrivals,
            "nonzero": self._nonzero.to_dict(),
            "sum_banks": [bank.to_dict() for bank in self._sum_banks],
            "sq_banks": [bank.to_dict() for bank in self._sq_banks],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExponentialHistogram":
        summary = cls(int(payload["window"]), float(payload["epsilon"]))
        summary.arrivals = int(payload["arrivals"])
        summary._nonzero = BasicCountingEH.from_dict(payload["nonzero"])
        summary._sum_banks = [
            BasicCountingEH.from_dict(bank) for bank in payload["sum_banks"]
        ]
        summary._sq_banks = [
            BasicCountingEH.from_dict(bank) for bank in payload["sq_banks"]
        ]
        return summary
