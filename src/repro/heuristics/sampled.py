"""Sampling-based histogram construction ([SRL99]-style baseline).

Random sampling is the classic space-efficient alternative to streaming
summaries: draw a uniform position sample of the sequence, solve the
(cheap, small) V-optimal problem on the sample, and map the sample's
bucket boundaries back to the full sequence.  Representatives are then
recomputed exactly from full prefix sums, so only the *boundaries* carry
sampling error.  The ablation benchmarks compare this route against the
one-pass (1 + eps)-approximation, which inspects every point.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Histogram
from ..core.optimal import optimal_histogram

__all__ = ["sampled_histogram"]


def sampled_histogram(
    values, num_buckets: int, sample_size: int = 256, seed: int = 0
) -> Histogram:
    """V-optimal boundaries estimated from a uniform position sample.

    ``sample_size`` positions (sorted, without replacement when possible)
    are drawn; the optimal histogram of the sampled subsequence supplies
    the boundary layout, stretched back to full resolution.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot build a histogram of an empty sequence")
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")

    if sample_size >= array.size:
        return optimal_histogram(array, num_buckets)

    rng = np.random.default_rng(seed)
    positions = np.sort(rng.choice(array.size, size=sample_size, replace=False))
    sample = array[positions]
    sketch = optimal_histogram(sample, num_buckets)

    # Map each sample-space split to the midpoint between the bracketing
    # original positions, so boundaries interpolate the sampling gaps.
    splits = []
    for sample_split in sketch.boundaries():
        left = int(positions[sample_split])
        right = int(positions[sample_split + 1])
        splits.append((left + right) // 2)
    splits = sorted({s for s in splits if 0 <= s < array.size - 1})
    return Histogram.from_boundaries(array, splits)
