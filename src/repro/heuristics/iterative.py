"""Local-search histogram refinement.

A classic middle ground between the O(n^2 B) optimal DP and the O(n)
heuristics: start from any partition and repeatedly move each boundary to
its locally optimal position between its two neighbours until no move
improves the SSE.  Each sweep is O(nB) (the per-boundary optimum is one
vectorized pass over the candidate positions), convergence is to a local
optimum, and in practice a handful of sweeps from an equal-width start
lands close to V-optimal -- the ablation benchmarks quantify how close.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Histogram
from ..core.prefix import PrefixSums
from .serial import equal_width_histogram

__all__ = ["refine_histogram", "iterative_histogram"]


def _best_move(prefix: PrefixSums, left_start: int, right_end: int) -> tuple[int, float]:
    """Optimal single split of ``[left_start .. right_end]`` into two buckets."""
    candidates = np.arange(left_start, right_end)
    left_errors = prefix.sqerror_prefixes(left_start, candidates)
    right_errors = prefix.sqerror_suffixes(candidates + 1, right_end)
    totals = left_errors + right_errors
    slot = int(np.argmin(totals))
    return int(candidates[slot]), float(totals[slot])


def refine_histogram(values, start: Histogram, max_sweeps: int = 20) -> Histogram:
    """Coordinate-descent refinement of an existing partition.

    Sweeps over the boundaries, re-optimizing each with its neighbours
    fixed, until a full sweep makes no move (or ``max_sweeps`` runs out).
    The SSE never increases; the result is a local optimum under
    single-boundary moves.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size != len(start):
        raise ValueError(
            f"value length {array.size} does not match histogram length {len(start)}"
        )
    if max_sweeps < 0:
        raise ValueError("max_sweeps must be non-negative")
    prefix = PrefixSums(array)
    splits = start.boundaries()
    if not splits:
        return Histogram.from_boundaries(array, splits)

    for _ in range(max_sweeps):
        moved = False
        for index in range(len(splits)):
            left_start = 0 if index == 0 else splits[index - 1] + 1
            right_end = array.size - 1 if index == len(splits) - 1 else splits[index + 1]
            best, _ = _best_move(prefix, left_start, right_end)
            if best != splits[index]:
                splits[index] = best
                moved = True
        if not moved:
            break
    return Histogram.from_boundaries(array, splits)


def iterative_histogram(values, num_buckets: int, max_sweeps: int = 20) -> Histogram:
    """Equal-width start + local-search refinement."""
    array = np.asarray(values, dtype=np.float64)
    start = equal_width_histogram(array, num_buckets)
    return refine_histogram(array, start, max_sweeps=max_sweeps)
