"""Classic heuristic histograms and cheap construction routes.

Baselines against which the paper's guaranteed algorithms are measured:
equi-width, equi-depth and MaxDiff partitions, local-search refinement,
and sampling-based construction.
"""

from .iterative import iterative_histogram, refine_histogram
from .sampled import sampled_histogram
from .serial import equal_depth_histogram, equal_width_histogram, maxdiff_histogram

__all__ = [
    "equal_depth_histogram",
    "equal_width_histogram",
    "iterative_histogram",
    "maxdiff_histogram",
    "refine_histogram",
    "sampled_histogram",
]
