"""Classic heuristic histograms over serial data.

The paper frames V-optimal construction against the long line of heuristic
histograms from the classic (finite-data) problem ([IP95], [PI97]).  These
serve as cheap baselines and as ablation points: they are O(n) or
O(n log n) to build but carry no approximation guarantee.

All functions partition the *positions* of a sequence (the serial-data
formulation used throughout the paper).  Approximating a value
*distribution* reduces to the same problem by sorting the values first,
which is how :mod:`repro.warehouse` uses them: an equal-length partition of
the sorted sequence is exactly the classic equi-depth histogram.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Histogram

__all__ = ["equal_width_histogram", "equal_depth_histogram", "maxdiff_histogram"]


def _validate(n: int, num_buckets: int) -> int:
    if n < 1:
        raise ValueError("cannot build a histogram of an empty sequence")
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    return min(num_buckets, n)


def equal_width_histogram(values, num_buckets: int) -> Histogram:
    """Partition positions into ``num_buckets`` (near-)equal-length buckets."""
    array = np.asarray(values, dtype=np.float64)
    buckets = _validate(array.size, num_buckets)
    edges = np.linspace(0, array.size, buckets + 1).round().astype(int)
    splits = [int(edge) - 1 for edge in edges[1:-1]]
    # Deduplicate any collapsed edges on very short inputs.
    splits = sorted({s for s in splits if 0 <= s < array.size - 1})
    return Histogram.from_boundaries(array, splits)


def equal_depth_histogram(values, num_buckets: int) -> Histogram:
    """Bucket boundaries at (near-)equal shares of the total value mass.

    Each bucket covers roughly ``sum(values) / B`` of cumulative mass --
    the serial analogue of the classic equi-depth histogram (exactly
    equi-depth when ``values`` are the sorted frequencies of a
    distribution).  Requires non-negative values.
    """
    array = np.asarray(values, dtype=np.float64)
    buckets = _validate(array.size, num_buckets)
    if np.any(array < 0):
        raise ValueError("equal-depth partitioning requires non-negative values")
    total = float(array.sum())
    if total == 0.0:
        return equal_width_histogram(array, buckets)
    cumulative = np.cumsum(array)
    targets = total * np.arange(1, buckets) / buckets
    splits = np.searchsorted(cumulative, targets, side="left")
    splits = sorted({int(s) for s in splits if 0 <= s < array.size - 1})
    return Histogram.from_boundaries(array, splits)


def maxdiff_histogram(values, num_buckets: int) -> Histogram:
    """Boundaries at the ``B - 1`` largest adjacent differences (MaxDiff).

    The MaxDiff(V, A) heuristic of Poosala et al. adapted to serial data:
    split where consecutive values differ the most, so flat runs stay in
    one bucket.  O(n log n) and often close to V-optimal on piecewise-
    constant data, but with no guarantee -- see the ablation benchmarks.
    """
    array = np.asarray(values, dtype=np.float64)
    buckets = _validate(array.size, num_buckets)
    if array.size == 1 or buckets == 1:
        return Histogram.from_boundaries(array, [])
    gaps = np.abs(np.diff(array))
    order = np.lexsort((np.arange(gaps.size), -gaps))
    splits = sorted(int(i) for i in order[: buckets - 1])
    return Histogram.from_boundaries(array, splits)
