"""Dimensionality reducers for similarity search.

Each reducer turns a raw series into a mean-valued piecewise-constant
:class:`~repro.core.bucket.Histogram` under a common *number budget*: the
count of floats/ints the index may store per series.  Two numbers buy one
adaptive segment (boundary + mean) but only one is needed per fixed
segment (PAA), matching the space accounting of [KCMP01] and the paper.

* :class:`VOptimalReducer` -- the paper's proposal: (approximate)
  V-optimal buckets, via the optimal DP or the one-pass epsilon-
  approximate algorithm.
* :class:`APCAReducer` -- Keogh et al.'s APCA, the paper's comparator.
* :class:`PAAReducer` -- equal-length segments (Piecewise Aggregate
  Approximation), the classic cheap baseline.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..core.approx import approximate_histogram
from ..core.bucket import Histogram
from ..core.optimal import optimal_histogram
from ..heuristics.serial import equal_width_histogram
from .apca import apca

__all__ = ["Reducer", "VOptimalReducer", "APCAReducer", "PAAReducer"]


class Reducer(Protocol):
    """Reduces a raw series to a piecewise-constant representation."""

    name: str
    budget: int

    def reduce(self, series) -> Histogram: ...


def _adaptive_segments(budget: int) -> int:
    """Segments affordable under a number budget when each costs two."""
    if budget < 2:
        raise ValueError("adaptive representations need a budget of >= 2 numbers")
    return budget // 2


class VOptimalReducer:
    """V-optimal (or epsilon-approximate V-optimal) segment features."""

    def __init__(self, budget: int, epsilon: float | None = None) -> None:
        self.budget = budget
        self.segments = _adaptive_segments(budget)
        self.epsilon = epsilon
        suffix = "" if epsilon is None else f", eps={epsilon:g}"
        self.name = f"vopt(M={self.segments}{suffix})"

    def reduce(self, series) -> Histogram:
        values = np.asarray(series, dtype=np.float64)
        if self.epsilon is None:
            return optimal_histogram(values, self.segments)
        return approximate_histogram(values, self.segments, self.epsilon)


class APCAReducer:
    """APCA segment features ([KCMP01])."""

    def __init__(self, budget: int) -> None:
        self.budget = budget
        self.segments = _adaptive_segments(budget)
        self.name = f"apca(M={self.segments})"

    def reduce(self, series) -> Histogram:
        return apca(series, self.segments)


class PAAReducer:
    """Equal-length segment means; one number per segment."""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.segments = budget
        self.name = f"paa(M={self.segments})"

    def reduce(self, series) -> Histogram:
        return equal_width_histogram(series, self.segments)
