"""Time-series similarity search (paper section 5.2)."""

from .apca import apca
from .distance import euclidean, lower_bound_distance, project_onto, znormalize
from .features import APCAReducer, PAAReducer, Reducer, VOptimalReducer
from .index import SearchOutcome, SeriesIndex
from .subsequence import SubsequenceIndex, SubsequenceMatch, SubsequenceOutcome

__all__ = [
    "APCAReducer",
    "PAAReducer",
    "Reducer",
    "SearchOutcome",
    "SeriesIndex",
    "SubsequenceIndex",
    "SubsequenceMatch",
    "SubsequenceOutcome",
    "VOptimalReducer",
    "apca",
    "euclidean",
    "lower_bound_distance",
    "project_onto",
    "znormalize",
]
