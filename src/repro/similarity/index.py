"""GEMINI-style similarity index (paper section 5.2).

The classic filter-and-refine scheme: store a reduced representation of
every series; at query time compute the cheap lower-bound distance
against each representation, fetch and verify only the series the bound
cannot rule out.  The lower bound never exceeds the true distance, so the
answer set is exact; the representation's quality is measured by the
**false positives** -- verified candidates that fail the true-distance
test -- which is the paper's comparison metric against APCA.

The paper's experiments use an R-tree over the reduced space; the
false-positive count depends only on the lower bound and the
representation, not on the tree, so a filtered linear scan reproduces the
metric faithfully (see DESIGN.md section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bucket import Histogram
from .distance import euclidean, lower_bound_distance, znormalize
from .features import Reducer

__all__ = ["SearchOutcome", "SeriesIndex"]


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one filtered search.

    ``matches`` holds (series id, true distance) pairs inside the radius /
    the k nearest; ``candidates_verified`` counts raw-series distance
    computations; ``false_positives`` counts verified candidates that were
    not answers.  ``pruned`` = series rejected by the lower bound alone.
    """

    matches: list[tuple[int, float]]
    candidates_verified: int
    false_positives: int
    pruned: int

    @property
    def precision(self) -> float:
        """Fraction of verified candidates that were answers."""
        if self.candidates_verified == 0:
            return 1.0
        return len(self.matches) / self.candidates_verified


class SeriesIndex:
    """Filter-and-refine index over a collection of equal-length series.

    With ``normalize=True`` every indexed series and every query is
    z-normalized first (the offset/amplitude-invariant matching of the
    similarity literature); distances are then between normalized shapes.
    """

    def __init__(self, reducer: Reducer, normalize: bool = False) -> None:
        self._reducer = reducer
        self.normalize = normalize
        self._series: list[np.ndarray] = []
        self._representations: list[Histogram] = []

    @property
    def reducer_name(self) -> str:
        return self._reducer.name

    def __len__(self) -> int:
        return len(self._series)

    def _prepare(self, series) -> np.ndarray:
        values = np.asarray(series, dtype=np.float64)
        if self.normalize:
            return znormalize(values)
        return values.copy()

    def add(self, series) -> int:
        """Index one series; returns its id."""
        values = np.asarray(series, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("series must be one-dimensional")
        if self._series and values.size != self._series[0].size:
            raise ValueError(
                f"series length {values.size} does not match index length "
                f"{self._series[0].size}"
            )
        prepared = self._prepare(values)
        self._series.append(prepared)
        self._representations.append(self._reducer.reduce(prepared))
        return len(self._series) - 1

    def add_all(self, collection) -> None:
        for series in np.asarray(collection, dtype=np.float64):
            self.add(series)

    def representation(self, series_id: int) -> Histogram:
        return self._representations[series_id]

    def range_search(self, query, radius: float) -> SearchOutcome:
        """All series within ``radius`` (Euclidean) of ``query``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        query = self._prepare(query)
        matches: list[tuple[int, float]] = []
        verified = 0
        pruned = 0
        for series_id, representation in enumerate(self._representations):
            bound = lower_bound_distance(query, representation)
            if bound > radius:
                pruned += 1
                continue
            verified += 1
            distance = euclidean(query, self._series[series_id])
            if distance <= radius:
                matches.append((series_id, distance))
        return SearchOutcome(
            matches=sorted(matches, key=lambda pair: pair[1]),
            candidates_verified=verified,
            false_positives=verified - len(matches),
            pruned=pruned,
        )

    def knn_search(self, query, k: int) -> SearchOutcome:
        """The ``k`` nearest series, best-first over lower bounds.

        Candidates are verified in increasing lower-bound order; the scan
        stops once the next bound exceeds the current k-th best true
        distance, which preserves exactness.  False positives are the
        verified series that do not end up in the answer set.
        """
        if not (1 <= k <= len(self._series)):
            raise ValueError(f"k must be in [1, {len(self._series)}]")
        query = self._prepare(query)
        bounds = sorted(
            (lower_bound_distance(query, rep), series_id)
            for series_id, rep in enumerate(self._representations)
        )
        best: list[tuple[float, int]] = []  # (true distance, id), sorted
        verified = 0
        for bound, series_id in bounds:
            if len(best) == k and bound > best[-1][0]:
                break
            verified += 1
            distance = euclidean(query, self._series[series_id])
            best.append((distance, series_id))
            best.sort()
            del best[k:]
        matches = [(series_id, distance) for distance, series_id in best]
        return SearchOutcome(
            matches=matches,
            candidates_verified=verified,
            false_positives=verified - len(matches),
            pruned=len(self._series) - verified,
        )
