"""Distances for time-series similarity (paper section 5.2).

The GEMINI indexing framework needs two ingredients: the true distance
(Euclidean here, as in [KCMP01] and the paper) and a cheap *lower bound*
computed from a reduced representation.  As long as the bound never
exceeds the true distance there are no false dismissals; the quality of a
representation shows up as the number of false positives the bound lets
through.

For any piecewise-constant representation ``C`` of a candidate series,

    LB(Q, C)^2 = sum_i len_i * (mean(Q over segment i) - c_i)^2

lower-bounds the squared Euclidean distance between the query ``Q`` and
the raw candidate *if the representative of each segment is the segment
mean of the candidate* (within-segment variance only adds to the true
distance).  All representations in this library (V-optimal, APCA, PAA)
use segment means, so one bound serves them all.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Histogram

__all__ = ["euclidean", "lower_bound_distance", "project_onto", "znormalize"]


def znormalize(series) -> np.ndarray:
    """Zero-mean unit-variance normalization (constant series map to 0).

    The standard preprocessing of the similarity-search literature
    ([KCMP01] and successors): matching should be invariant to offset and
    amplitude, so both indexed series and queries are normalized before
    reduction and comparison.
    """
    values = np.asarray(series, dtype=np.float64)
    spread = float(values.std())
    if spread == 0.0:
        return np.zeros_like(values)
    return (values - values.mean()) / spread


def euclidean(a, b) -> float:
    """Euclidean distance between two equal-length series."""
    left = np.asarray(a, dtype=np.float64)
    right = np.asarray(b, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch {left.shape} vs {right.shape}")
    return float(np.sqrt(np.sum((left - right) ** 2)))


def project_onto(query, histogram: Histogram) -> np.ndarray:
    """Per-segment means of ``query`` over the histogram's buckets."""
    values = np.asarray(query, dtype=np.float64)
    if values.size != len(histogram):
        raise ValueError(
            f"query length {values.size} does not match representation length "
            f"{len(histogram)}"
        )
    cumulative = np.concatenate(([0.0], np.cumsum(values)))
    means = np.empty(histogram.num_buckets)
    for i, bucket in enumerate(histogram.buckets):
        means[i] = (cumulative[bucket.end + 1] - cumulative[bucket.start]) / bucket.size
    return means


def lower_bound_distance(query, histogram: Histogram) -> float:
    """Lower bound on ``euclidean(query, candidate)`` from the candidate's
    mean-valued piecewise-constant representation.

    Guaranteed ``<=`` the true distance (segment-mean decomposition of the
    squared error), hence no false dismissals in GEMINI-style search.
    """
    means = project_onto(query, histogram)
    total = 0.0
    for mean, bucket in zip(means, histogram.buckets):
        gap = mean - bucket.value
        total += bucket.size * gap * gap
    return float(np.sqrt(total))
