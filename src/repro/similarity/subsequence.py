"""Subsequence time-series matching (paper section 5.2).

The paper evaluates both whole-series and *subsequence* matching: find
the places inside one long stream where a short query pattern (almost)
occurs.  Following the classic ST-index construction, every window of the
stream (at a configurable stride) is reduced and indexed; the same
lower-bound filter-and-refine machinery then answers pattern queries over
window start positions.  When the stream is consumed incrementally the
window representations can come straight from the paper's fixed-window
histogram builder -- see :meth:`SubsequenceIndex.from_stream_builder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bucket import Histogram
from ..runtime import StreamPipeline, make_maintainer
from .distance import euclidean, lower_bound_distance, znormalize
from .features import Reducer

__all__ = ["SubsequenceMatch", "SubsequenceOutcome", "SubsequenceIndex"]


@dataclass(frozen=True)
class SubsequenceMatch:
    """One matching window: its start offset and true distance."""

    offset: int
    distance: float


@dataclass(frozen=True)
class SubsequenceOutcome:
    matches: list[SubsequenceMatch]
    candidates_verified: int
    false_positives: int
    pruned: int


class SubsequenceIndex:
    """Filter-and-refine index over the windows of one long series.

    With ``normalize=True`` each window (and each query pattern) is
    z-normalized before reduction, so matching is offset- and
    amplitude-invariant -- the ST-index convention.
    """

    def __init__(
        self,
        series,
        window_length: int,
        reducer: Reducer,
        stride: int = 1,
        normalize: bool = False,
    ) -> None:
        values = np.asarray(series, dtype=np.float64)
        if window_length < 1 or window_length > values.size:
            raise ValueError("window_length must be in [1, len(series)]")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self._values = values
        self.window_length = window_length
        self.stride = stride
        self.normalize = normalize
        self._offsets = list(range(0, values.size - window_length + 1, stride))
        self._representations: list[Histogram] = [
            reducer.reduce(self._window_at(o)) for o in self._offsets
        ]

    def _window_at(self, offset: int) -> np.ndarray:
        window = self._values[offset : offset + self.window_length]
        return znormalize(window) if self.normalize else window

    @classmethod
    def from_stream_builder(
        cls, series, window_length: int, num_buckets: int, epsilon: float, stride: int = 1
    ) -> "SubsequenceIndex":
        """Build the index with one pass of the fixed-window builder.

        This is the streaming construction the paper enables: the
        representations of *all* windows fall out of the incremental
        maintenance, without re-reducing each window from scratch.
        """
        values = np.asarray(series, dtype=np.float64)
        index = cls.__new__(cls)
        index._values = values
        index.window_length = window_length
        index.stride = stride
        index.normalize = False
        index._offsets = []
        index._representations = []
        maintainer = make_maintainer(
            "fixed_window",
            window_size=window_length,
            num_buckets=num_buckets,
            epsilon=epsilon,
        )

        def snapshot(arrivals: int, pipeline: StreamPipeline) -> None:
            index._offsets.append(arrivals - window_length)
            index._representations.append(maintainer.synopsis())

        StreamPipeline(
            [maintainer],
            maintain_every=None,  # the lazy builder rebuilds at each snapshot
            checkpoint_every=stride,
            warmup=window_length,
            checkpoint_alignment="warmup",
            on_checkpoint=snapshot,
        ).run(values)
        return index

    def __len__(self) -> int:
        return len(self._offsets)

    def window(self, offset: int) -> np.ndarray:
        """The (normalized, if enabled) window starting at ``offset``."""
        return self._window_at(offset)

    def range_search(self, pattern, radius: float) -> SubsequenceOutcome:
        """All windows within ``radius`` (Euclidean) of ``pattern``."""
        pattern = np.asarray(pattern, dtype=np.float64)
        if self.normalize:
            pattern = znormalize(pattern)
        if pattern.size != self.window_length:
            raise ValueError(
                f"pattern length {pattern.size} does not match window length "
                f"{self.window_length}"
            )
        if radius < 0:
            raise ValueError("radius must be non-negative")
        matches: list[SubsequenceMatch] = []
        verified = 0
        pruned = 0
        for offset, representation in zip(self._offsets, self._representations):
            if lower_bound_distance(pattern, representation) > radius:
                pruned += 1
                continue
            verified += 1
            distance = euclidean(pattern, self.window(offset))
            if distance <= radius:
                matches.append(SubsequenceMatch(offset, distance))
        matches.sort(key=lambda match: match.distance)
        return SubsequenceOutcome(
            matches=matches,
            candidates_verified=verified,
            false_positives=verified - len(matches),
            pruned=pruned,
        )
