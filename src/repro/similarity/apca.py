"""APCA: Adaptive Piecewise Constant Approximation ([KCMP01]).

The comparator representation of the paper's similarity experiments
(section 5.2).  Keogh et al. build an M-segment piecewise-constant
approximation of a time series by (i) taking the Haar wavelet transform,
(ii) keeping the largest coefficients, (iii) reconstructing and reading
off the implied segments, then (iv) greedily merging adjacent segments
until exactly M remain, finally replacing each segment value with the
exact data mean over the segment.  This module implements that pipeline
and returns the result as a standard :class:`~repro.core.bucket.Histogram`
so APCA plugs into the same query and distance machinery as every other
piecewise-constant synopsis in the library.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.bucket import Histogram
from ..wavelets.synopsis import WaveletSynopsis

__all__ = ["apca"]


def _segments_of(reconstruction: np.ndarray) -> list[int]:
    """Split positions implied by a piecewise-constant array."""
    changes = np.nonzero(np.diff(reconstruction))[0]
    return [int(i) for i in changes]


def _merge_to_budget(values: np.ndarray, splits: list[int], segments: int) -> list[int]:
    """Greedily drop splits, each time the one whose removal adds least SSE.

    A lazy-deletion heap keyed by the SSE increase of merging the two
    segments adjacent to each split; stale entries are re-validated
    against the current neighbour structure before use.
    """
    if len(splits) + 1 <= segments:
        return splits
    cumulative = np.concatenate(([0.0], np.cumsum(values)))
    cumulative_sq = np.concatenate(([0.0], np.cumsum(values * values)))

    def sse(start: int, end: int) -> float:
        length = end - start + 1
        total = cumulative[end + 1] - cumulative[start]
        sq = cumulative_sq[end + 1] - cumulative_sq[start]
        return max(0.0, sq - total * total / length)

    # Doubly linked structure over boundary positions (with sentinels).
    bounds = [-1] + sorted(splits) + [values.size - 1]
    previous = {bounds[i]: bounds[i - 1] for i in range(1, len(bounds))}
    following = {bounds[i]: bounds[i + 1] for i in range(len(bounds) - 1)}
    alive = set(splits)

    def merge_cost(split: int) -> float:
        left = previous[split]
        right = following[split]
        return sse(left + 1, right) - sse(left + 1, split) - sse(split + 1, right)

    heap = [(merge_cost(s), s) for s in splits]
    heapq.heapify(heap)
    remaining = len(splits) + 1
    while remaining > segments and heap:
        cost, split = heapq.heappop(heap)
        if split not in alive:
            continue
        current = merge_cost(split)
        if current > cost + 1e-12:
            heapq.heappush(heap, (current, split))
            continue
        # Merge: remove this split, rewire neighbours, refresh their costs.
        alive.discard(split)
        left, right = previous[split], following[split]
        following[left] = right
        previous[right] = left
        remaining -= 1
        for neighbour in (left, right):
            if neighbour in alive:
                heapq.heappush(heap, (merge_cost(neighbour), neighbour))
    return sorted(alive)


def apca(series, segments: int) -> Histogram:
    """M-segment APCA of a series, as a histogram with exact segment means."""
    values = np.asarray(series, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot approximate an empty series")
    if segments < 1:
        raise ValueError("segments must be >= 1")
    if segments >= values.size:
        return Histogram.from_boundaries(values, list(range(values.size - 1)))

    # Haar-thresholded sketch: keep enough coefficients that the implied
    # segmentation is at least as fine as the budget, then merge down.
    synopsis = WaveletSynopsis.from_values(values, max(segments, 1))
    reconstruction = synopsis.to_array()
    splits = _segments_of(reconstruction)
    splits = [s for s in splits if s < values.size - 1]
    splits = _merge_to_budget(values, splits, segments)
    return Histogram.from_boundaries(values, splits)
