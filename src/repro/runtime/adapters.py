"""Adapter maintainers wrapping every synopsis backend in the repo.

Each adapter translates the backend's own verbs (``append``/``insert``/
``update``/``histogram``/...) into the uniform :class:`~repro.runtime.
maintainer.Maintainer` contract, forwards batches to vectorized backend
ingestion where one exists, and surfaces the backend's telemetry through
:meth:`Maintainer.stats`.  All of them are registered by string key in
:mod:`repro.runtime.registry`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.agglomerative import AgglomerativeHistogramBuilder
from ..core.bucket import Histogram
from ..core.fixed_window import FixedWindowHistogramBuilder
from ..sketches.gk import GKQuantileSummary
from ..sketches.reservoir import ReservoirSample
from ..streams.window import SlidingWindow
from ..warehouse.streaming import StreamingEquiDepthSummary
from ..wavelets.dynamic import DynamicWaveletHistogram
from ..wavelets.synopsis import WaveletSynopsis
from .maintainer import Maintainer

__all__ = [
    "BufferSynopsis",
    "FixedWindowMaintainer",
    "AgglomerativeMaintainer",
    "WaveletWindowMaintainer",
    "DynamicWaveletMaintainer",
    "GKQuantileMaintainer",
    "EquiDepthMaintainer",
    "ReservoirMaintainer",
    "ExactBufferMaintainer",
    "DelayedMaintainer",
]


class BufferSynopsis:
    """A raw value buffer viewed as a synopsis (zero error, full space)."""

    def __init__(self, values) -> None:
        self._values = np.asarray(values, dtype=np.float64)
        self._cumulative = np.concatenate(([0.0], np.cumsum(self._values)))

    def __len__(self) -> int:
        return self._values.size

    def point_estimate(self, position: int) -> float:
        return float(self._values[position])

    def range_sum(self, i: int, j: int) -> float:
        return float(self._cumulative[j + 1] - self._cumulative[i])

    def range_average(self, i: int, j: int) -> float:
        return self.range_sum(i, j) / (j - i + 1)

    def to_array(self) -> np.ndarray:
        return self._values.copy()


def _window_state(window: SlidingWindow) -> dict:
    return {
        "capacity": window.capacity,
        "total_seen": window.total_seen,
        "values": window.values().tolist(),
    }


def _restore_window(state: dict) -> SlidingWindow:
    return SlidingWindow.restore(
        int(state["capacity"]), state["values"], int(state["total_seen"])
    )


class FixedWindowMaintainer(Maintainer):
    """The paper's fixed-window (1+eps) V-optimal histogram (section 4.5).

    ``maintain()`` triggers the interval-cover rebuild; between maintains
    the builder only slides its window, so a maintenance cadence of ``c``
    amortizes one rebuild over ``c`` arrivals.  With
    ``cache_synopsis=True`` every maintain also materializes the
    histogram, and :meth:`last_synopsis` serves that (possibly stale)
    snapshot without touching the builder -- the staleness side of the
    cadence dial.
    """

    supports_state_arrays = True

    def __init__(
        self,
        window_size: int,
        num_buckets: int,
        epsilon: float,
        engine: str = "lazy",
        cache_synopsis: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__(
            name
            or f"fixed_window(n={window_size}, B={num_buckets}, eps={epsilon:g})"
        )
        self._builder = FixedWindowHistogramBuilder(
            window_size, num_buckets, epsilon, engine=engine
        )
        self._cache_synopsis = cache_synopsis
        self._cached: Histogram | None = None

    @property
    def builder(self) -> FixedWindowHistogramBuilder:
        return self._builder

    def _ingest_one(self, value: float) -> None:
        self._builder.append(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._builder.extend(batch)

    def _maintain(self) -> None:
        self._builder.update()
        if self._cache_synopsis:
            self._cached = self._builder.histogram()

    def synopsis(self) -> Histogram:
        """The histogram of the *current* window (rebuilds if stale)."""
        return self._builder.histogram()

    def last_synopsis(self) -> Histogram:
        """The histogram as of the last maintain (requires caching)."""
        if self._cached is not None:
            return self._cached
        return self.synopsis()

    def window_values(self) -> np.ndarray:
        return self._builder.window_values()

    def _refresh_stats(self) -> None:
        lifetime = self._builder.lifetime_stats
        self._stats.herror_evaluations = lifetime.herror_evaluations
        self._stats.search_probes = lifetime.search_probes
        self._stats.rebuilds = self._builder.rebuild_count

    def _state_dict(self) -> dict:
        lifetime = self._builder.lifetime_stats
        return {
            "builder": self._builder.to_state(),
            "cache_synopsis": self._cache_synopsis,
            "cached": self._cached.to_dict() if self._cached is not None else None,
            # Lifetime telemetry is not part of the builder snapshot;
            # carry it so stats stay continuous across a restore.
            "rebuild_count": self._builder.rebuild_count,
            "herror_evaluations": lifetime.herror_evaluations,
            "search_probes": lifetime.search_probes,
        }

    def _load_state_dict(self, state: dict) -> None:
        self._builder = FixedWindowHistogramBuilder.from_state(state["builder"])
        self._builder.rebuild_count = int(state.get("rebuild_count", 0))
        self._builder.lifetime_stats.herror_evaluations = int(
            state.get("herror_evaluations", 0)
        )
        self._builder.lifetime_stats.search_probes = int(
            state.get("search_probes", 0)
        )
        self._cache_synopsis = bool(state.get("cache_synopsis", False))
        cached = state.get("cached")
        self._cached = Histogram.from_dict(cached) if cached is not None else None


class AgglomerativeMaintainer(Maintainer):
    """The one-pass whole-prefix histogram builder (section 4.3)."""

    supports_state_arrays = True

    def __init__(
        self, num_buckets: int, epsilon: float, name: str | None = None
    ) -> None:
        super().__init__(name or f"agglomerative(B={num_buckets}, eps={epsilon:g})")
        self._builder = AgglomerativeHistogramBuilder(num_buckets, epsilon)

    @property
    def builder(self) -> AgglomerativeHistogramBuilder:
        return self._builder

    def _ingest_one(self, value: float) -> None:
        self._builder.append(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._builder.extend(batch.tolist())

    def synopsis(self) -> Histogram:
        return self._builder.histogram()

    def _refresh_stats(self) -> None:
        # The queues are maintained per point; rebuilds == points consumed.
        self._stats.rebuilds = len(self._builder)

    def _state_dict(self) -> dict:
        return {"builder": self._builder.to_state()}

    def _load_state_dict(self, state: dict) -> None:
        self._builder = AgglomerativeHistogramBuilder.from_state(state["builder"])


class WaveletWindowMaintainer(Maintainer):
    """Top-B Haar synopsis of a sliding window, recomputed per maintain.

    This is the paper's Figure-6 baseline: the transform runs from the raw
    buffer "from scratch every time", which is exactly what ``maintain``
    prices.  ``synopsis()`` always reflects the current buffer;
    :meth:`last_synopsis` serves the snapshot of the last maintain.
    """

    supports_state_arrays = True

    def __init__(self, window_size: int, budget: int, name: str | None = None) -> None:
        super().__init__(name or f"wavelet(n={window_size}, B={budget})")
        self.budget = budget
        self._window = SlidingWindow(window_size)
        self._cached: WaveletSynopsis | None = None

    def _ingest_one(self, value: float) -> None:
        self._window.append(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._window.extend(batch)

    def _maintain(self) -> None:
        self._cached = self.synopsis()
        self._stats.rebuilds += 1

    def synopsis(self) -> WaveletSynopsis:
        return WaveletSynopsis.from_values(self._window.values(), self.budget)

    def last_synopsis(self) -> WaveletSynopsis:
        if self._cached is not None:
            return self._cached
        return self.synopsis()

    def window_values(self) -> np.ndarray:
        return self._window.values()

    def _state_dict(self) -> dict:
        return {
            "budget": self.budget,
            "window": _window_state(self._window),
            "cached": self._cached.to_dict() if self._cached is not None else None,
        }

    def _load_state_dict(self, state: dict) -> None:
        self.budget = int(state["budget"])
        self._window = _restore_window(state["window"])
        cached = state.get("cached")
        self._cached = (
            WaveletSynopsis.from_dict(cached) if cached is not None else None
        )


class ExactBufferMaintainer(Maintainer):
    """The raw sliding buffer itself: zero error, reference answers."""

    supports_state_arrays = True

    def __init__(self, window_size: int, name: str | None = None) -> None:
        super().__init__(name or f"exact(n={window_size})")
        self._window = SlidingWindow(window_size)

    def _ingest_one(self, value: float) -> None:
        self._window.append(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._window.extend(batch)

    def synopsis(self) -> BufferSynopsis:
        return BufferSynopsis(self._window.values())

    def window_values(self) -> np.ndarray:
        return self._window.values()

    def _state_dict(self) -> dict:
        return {"window": _window_state(self._window)}

    def _load_state_dict(self, state: dict) -> None:
        self._window = _restore_window(state["window"])


class DynamicWaveletMaintainer(Maintainer):
    """The [MVW00] dynamic wavelet histogram of a frequency vector."""

    supports_state_arrays = True

    def __init__(
        self, domain_size: int, budget: int, name: str | None = None
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        super().__init__(name or f"dynamic_wavelet(domain={domain_size}, B={budget})")
        self.budget = budget
        self._dynamic = DynamicWaveletHistogram(domain_size)

    @property
    def backend(self) -> DynamicWaveletHistogram:
        return self._dynamic

    def _ingest_one(self, value: float) -> None:
        self._dynamic.insert(int(round(value)))

    def _ingest_batch(self, batch: np.ndarray) -> None:
        # Reject non-finite values before rounding: np.rint(nan) would
        # warn and the int64 cast would silently produce a garbage bin.
        if batch.size and not np.isfinite(batch).all():
            raise ValueError("stream values must be finite (no NaN or inf)")
        # Round exactly as the one-point path does (half-to-even).
        self._dynamic.extend(np.rint(batch).astype(np.int64).tolist())

    def synopsis(self) -> WaveletSynopsis:
        return self._dynamic.synopsis(self.budget)

    def _state_dict(self) -> dict:
        return {"budget": self.budget, "histogram": self._dynamic.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self.budget = int(state["budget"])
        self._dynamic = DynamicWaveletHistogram.from_dict(state["histogram"])


class GKQuantileMaintainer(Maintainer):
    """The Greenwald-Khanna quantile summary behind the uniform interface.

    Its synopsis is the summary itself (``query``/``rank_bounds``/
    ``quantiles``) -- order statistics, not positional estimates.
    """

    supports_state_arrays = True

    def __init__(self, epsilon: float, name: str | None = None) -> None:
        super().__init__(name or f"gk_quantiles(eps={epsilon:g})")
        self._summary = GKQuantileSummary(epsilon)

    def _ingest_one(self, value: float) -> None:
        self._summary.insert(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._summary.extend(batch.tolist())

    def synopsis(self) -> GKQuantileSummary:
        return self._summary

    def _state_dict(self) -> dict:
        return {"summary": self._summary.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self._summary = GKQuantileSummary.from_dict(state["summary"])


class EquiDepthMaintainer(Maintainer):
    """Streaming equi-depth histogram of a non-negative attribute."""

    supports_state_arrays = True

    def __init__(
        self, num_buckets: int, epsilon: float = 0.01, name: str | None = None
    ) -> None:
        super().__init__(name or f"equi_depth(B={num_buckets}, eps={epsilon:g})")
        self._summary = StreamingEquiDepthSummary(num_buckets, epsilon)

    @property
    def backend(self) -> StreamingEquiDepthSummary:
        return self._summary

    def _ingest_one(self, value: float) -> None:
        self._summary.insert(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._summary.extend(batch)

    def synopsis(self) -> StreamingEquiDepthSummary:
        """The summary itself: it carries the distribution verbs.

        Serving the summary (rather than the rendered
        :meth:`~repro.warehouse.streaming.StreamingEquiDepthSummary.histogram`)
        keeps ``estimate_quantile`` / ``estimate_count`` available to the
        query layer; the histogram rendering stays one call away.
        """
        return self._summary

    def _state_dict(self) -> dict:
        return {"summary": self._summary.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self._summary = StreamingEquiDepthSummary.from_dict(state["summary"])


class ReservoirMaintainer(Maintainer):
    """Uniform reservoir sample with Horvitz-Thompson estimators."""

    supports_state_arrays = True

    def __init__(self, capacity: int, seed: int = 0, name: str | None = None) -> None:
        super().__init__(name or f"reservoir(k={capacity})")
        self._sample = ReservoirSample(capacity, seed=seed)

    def _ingest_one(self, value: float) -> None:
        self._sample.insert(value)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        self._sample.extend(batch.tolist())

    def synopsis(self) -> ReservoirSample:
        return self._sample

    def _state_dict(self) -> dict:
        return {"sample": self._sample.to_dict()}

    def _load_state_dict(self, state: dict) -> None:
        self._sample = ReservoirSample.from_dict(state["sample"])


class DelayedMaintainer(Maintainer):
    """Feed an inner maintainer the stream delayed by ``lag`` points.

    The change detector's reference window is exactly this: the same
    stream, ``lag`` arrivals behind.  Buffering happens here so the inner
    maintainer still benefits from batched ingestion.
    """

    supports_state_arrays = True

    def __init__(self, inner: Maintainer, lag: int, name: str | None = None) -> None:
        if lag < 1:
            raise ValueError("lag must be >= 1")
        super().__init__(name or f"delayed({inner.name}, lag={lag})")
        self.inner = inner
        self.lag = lag
        self._pending = np.empty(0, dtype=np.float64)

    def _ingest_batch(self, batch: np.ndarray) -> None:
        combined = (
            np.concatenate((self._pending, batch)) if self._pending.size else batch
        )
        cut = combined.size - self.lag
        if cut > 0:
            self._inner_extend(combined[:cut])
            combined = combined[cut:]
        self._pending = np.array(combined, dtype=np.float64, copy=True)

    def _inner_extend(self, chunk: np.ndarray) -> None:
        if chunk.size == 1:
            self.inner.append(float(chunk[0]))
        else:
            self.inner.extend(chunk)

    def _maintain(self) -> None:
        if self.inner.stats().points:
            self.inner.maintain()

    def synopsis(self):
        return self.inner.synopsis()

    def window_values(self) -> np.ndarray:
        return self.inner.window_values()

    def delayed_points(self) -> Sequence[float]:
        """The points buffered but not yet forwarded (oldest first)."""
        return self._pending.tolist()

    def _state_dict(self) -> dict:
        return {
            "lag": self.lag,
            "pending": self._pending.tolist(),
            "inner": self.inner.state_dict(),
        }

    def _load_state_dict(self, state: dict) -> None:
        self.lag = int(state["lag"])
        self._pending = np.asarray(state["pending"], dtype=np.float64)
        self.inner.load_state_dict(state["inner"])
