"""repro.runtime -- the unified synopsis-maintenance layer.

One interface (:class:`Maintainer`), one registry
(:func:`make_maintainer`), one driving loop (:class:`StreamPipeline`).
The query engines, the warehouse streaming summaries, change detection,
subsequence indexing and the Figure-6 benchmarks all maintain their
synopses through this layer; see ``docs/API.md`` ("Runtime layer").
"""

from .adapters import (
    AgglomerativeMaintainer,
    BufferSynopsis,
    DelayedMaintainer,
    DynamicWaveletMaintainer,
    EquiDepthMaintainer,
    ExactBufferMaintainer,
    FixedWindowMaintainer,
    GKQuantileMaintainer,
    ReservoirMaintainer,
    WaveletWindowMaintainer,
)
from .maintainer import Maintainer, MaintainerStats, UpdateMaintainer
from .pipeline import PipelineReport, StreamPipeline
from .registry import available_maintainers, make_maintainer, register_maintainer

__all__ = [
    "AgglomerativeMaintainer",
    "BufferSynopsis",
    "DelayedMaintainer",
    "DynamicWaveletMaintainer",
    "EquiDepthMaintainer",
    "ExactBufferMaintainer",
    "FixedWindowMaintainer",
    "GKQuantileMaintainer",
    "Maintainer",
    "MaintainerStats",
    "PipelineReport",
    "ReservoirMaintainer",
    "StreamPipeline",
    "UpdateMaintainer",
    "WaveletWindowMaintainer",
    "available_maintainers",
    "make_maintainer",
    "register_maintainer",
]
