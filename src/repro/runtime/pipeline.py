"""The one driving loop: fan a stream out to N maintainers.

Every "feed points, maintain at a cadence, query at checkpoints" loop in
the repo routes through :class:`StreamPipeline`.  The pipeline slices the
incoming stream into batches, splits each batch exactly at maintenance
and checkpoint boundaries (so cadence semantics are identical to a
per-point loop), feeds every maintainer the resulting sub-batches through
the vectorized ``extend`` fast path, and fires the registered callbacks:

* ``on_maintain(arrivals, pipeline)`` after each maintenance round;
* ``on_checkpoint(arrivals, pipeline)`` at each checkpoint -- this is
  where consumers evaluate standing queries, score accuracy, compare
  synopses, or snapshot representations.

Checkpoints fire once ``arrivals >= warmup``; with the default
``checkpoint_alignment="stream"`` they land on absolute multiples of the
cadence (``arrivals % every == 0``), with ``"warmup"`` on offsets from
the warmup point (``(arrivals - warmup) % every == 0``).

Because batches are split only at event boundaries, a cadence of ``c``
ingests chunks of ``c`` points between rebuilds -- the batched-ingestion
amortization the fixed-window builder's vectorized ``extend`` exploits.
Sharding a pipeline across processes or making ingestion asynchronous is
a change in this module alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.prefix import as_stream_batch
from .maintainer import Maintainer, MaintainerStats

__all__ = ["StreamPipeline", "PipelineReport"]


@dataclass
class PipelineReport:
    """Per-maintainer outcome of one pipeline run."""

    name: str
    maintenance_seconds: float = 0.0
    checkpoints: int = 0
    stats: MaintainerStats = field(default_factory=MaintainerStats)


class StreamPipeline:
    """Drive one stream into N maintainers with configurable cadences.

    Parameters
    ----------
    maintainers:
        The fan-out targets; each is fed every stream point in order.
    maintain_every:
        Explicit maintenance cadence in arrivals (1 = the paper's
        rebuild-per-arrival model).  ``None`` never calls ``maintain``;
        lazy backends then rebuild on demand at query time.
    checkpoint_every / warmup / checkpoint_alignment:
        Checkpoint cadence; no checkpoint fires before ``warmup``
        arrivals.  ``"stream"`` alignment fires on absolute stream
        positions, ``"warmup"`` on offsets from the warmup point.
    on_checkpoint / on_maintain:
        Callbacks ``(arrivals, pipeline) -> None``.
    batch_size:
        Slice length used by :meth:`run` when consuming a stream.
    initial_arrivals:
        Arrival counter to resume from.  A pipeline restored from a
        checkpoint (see :mod:`repro.service`) must keep counting from the
        snapshot position so maintenance and checkpoint events keep
        firing at the same absolute stream positions as an uninterrupted
        run.
    observer:
        Optional duck-typed telemetry sink with a
        ``record_stage(stage, seconds, arrivals)`` method (see
        :class:`repro.obs.tracing.PipelineObserver`).  Stage durations
        are accumulated across one :meth:`extend` call and emitted once
        on success, so per-point cadences pay no per-chunk observer
        cost.  The pipeline only duck-calls the hook -- this module
        never imports :mod:`repro.obs`.
    """

    def __init__(
        self,
        maintainers: Sequence[Maintainer],
        maintain_every: int | None = 1,
        checkpoint_every: int | None = None,
        warmup: int = 0,
        checkpoint_alignment: str = "stream",
        on_checkpoint: Callable[[int, "StreamPipeline"], None] | None = None,
        on_maintain: Callable[[int, "StreamPipeline"], None] | None = None,
        batch_size: int = 1024,
        initial_arrivals: int = 0,
        observer=None,
    ) -> None:
        if not maintainers:
            raise ValueError("need at least one maintainer")
        if maintain_every is not None and maintain_every < 1:
            raise ValueError("maintain_every must be >= 1 (or None)")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        if checkpoint_alignment not in ("stream", "warmup"):
            raise ValueError(
                f"unknown checkpoint_alignment {checkpoint_alignment!r}; "
                "use 'stream' or 'warmup'"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if initial_arrivals < 0:
            raise ValueError("initial_arrivals must be non-negative")
        names = [m.name for m in maintainers]
        if len(set(names)) != len(names):
            raise ValueError(f"maintainer names must be unique, got {names}")
        self.maintainers = list(maintainers)
        self.maintain_every = maintain_every
        self.checkpoint_every = checkpoint_every
        self.warmup = warmup
        self.checkpoint_alignment = checkpoint_alignment
        self.on_checkpoint = on_checkpoint
        self.on_maintain = on_maintain
        self.batch_size = batch_size
        self.observer = observer
        self._arrivals = initial_arrivals
        self._reports = [PipelineReport(name) for name in names]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arrivals(self) -> int:
        """Total stream points consumed so far."""
        return self._arrivals

    def __getitem__(self, name: str) -> Maintainer:
        for maintainer in self.maintainers:
            if maintainer.name == name:
                return maintainer
        raise KeyError(f"no maintainer named {name!r}")

    def reports(self) -> list[PipelineReport]:
        """Per-maintainer reports with fresh stats snapshots."""
        for maintainer, report in zip(self.maintainers, self._reports):
            report.stats = maintainer.stats()
        return list(self._reports)

    # ------------------------------------------------------------------
    # Event schedule
    # ------------------------------------------------------------------

    def _next_checkpoint(self) -> int | None:
        every = self.checkpoint_every
        if every is None:
            return None
        arrivals = self._arrivals
        if self.checkpoint_alignment == "warmup":
            if arrivals < self.warmup:
                return self.warmup
            return self.warmup + ((arrivals - self.warmup) // every + 1) * every
        nxt = (arrivals // every + 1) * every
        if nxt < self.warmup:
            nxt = -(-self.warmup // every) * every  # first multiple >= warmup
        return nxt

    def _next_maintain(self) -> int | None:
        if self.maintain_every is None:
            return None
        return (self._arrivals // self.maintain_every + 1) * self.maintain_every

    def _checkpoint_due(self) -> bool:
        every = self.checkpoint_every
        if every is None or self._arrivals < self.warmup:
            return False
        if self.checkpoint_alignment == "warmup":
            return (self._arrivals - self.warmup) % every == 0
        return self._arrivals % every == 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, value: float) -> None:
        """Consume one stream point (events fire as in a per-point loop)."""
        self.extend((float(value),))

    def extend(self, values) -> None:
        """Consume a batch; split it exactly at event boundaries."""
        array = as_stream_batch(values)
        offset = 0
        ingest_seconds = 0.0
        maintain_seconds = 0.0
        maintained = False
        while offset < array.size:
            boundaries = [
                b for b in (self._next_maintain(), self._next_checkpoint())
                if b is not None
            ]
            take = array.size - offset
            if boundaries:
                take = min(take, min(boundaries) - self._arrivals)
            chunk = array[offset : offset + take]
            self._arrivals += take
            maintain_now = (
                self.maintain_every is not None
                and self._arrivals % self.maintain_every == 0
            )
            fed = 0
            try:
                for maintainer, report in zip(self.maintainers, self._reports):
                    started = time.perf_counter()
                    if take == 1:
                        maintainer.append(float(chunk[0]))
                    else:
                        maintainer.extend(chunk)
                    elapsed = time.perf_counter() - started
                    report.maintenance_seconds += elapsed
                    ingest_seconds += elapsed
                    fed += 1
            except BaseException:
                if fed == 0:
                    # No maintainer consumed the chunk (adapters validate
                    # before they mutate), so roll the arrival counter
                    # back: callers can then attribute the failure to
                    # exactly the un-ingested points.  With several
                    # maintainers a partial fan-out is not recoverable
                    # and the counter keeps the applied position.
                    self._arrivals -= take
                raise
            if maintain_now:
                maintained = True
                for maintainer, report in zip(self.maintainers, self._reports):
                    started = time.perf_counter()
                    maintainer.maintain()
                    elapsed = time.perf_counter() - started
                    report.maintenance_seconds += elapsed
                    maintain_seconds += elapsed
            if maintain_now and self.on_maintain is not None:
                self.on_maintain(self._arrivals, self)
            if self._checkpoint_due():
                for report in self._reports:
                    report.checkpoints += 1
                if self.on_checkpoint is not None:
                    self.on_checkpoint(self._arrivals, self)
            offset += take
        if self.observer is not None and array.size:
            # One emission per extend() call, not per chunk: a cadence of
            # 1 splits every batch into per-point chunks and a per-chunk
            # hook would dominate the hot path.
            self.observer.record_stage("ingest", ingest_seconds, self._arrivals)
            if maintained:
                self.observer.record_stage(
                    "maintain", maintain_seconds, self._arrivals
                )

    def run(self, stream: Iterable[float]) -> list[PipelineReport]:
        """Consume a whole stream in ``batch_size`` slices."""
        if isinstance(stream, np.ndarray) or hasattr(stream, "__len__"):
            array = as_stream_batch(stream)
            for start in range(0, array.size, self.batch_size):
                self.extend(array[start : start + self.batch_size])
        else:
            iterator = iter(stream)
            while True:
                batch = list(islice(iterator, self.batch_size))
                if not batch:
                    break
                self.extend(batch)
        return self.reports()
