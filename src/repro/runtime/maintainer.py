"""The uniform synopsis-maintenance interface of the runtime layer.

Every incrementally maintained summary in this repo -- fixed-window and
agglomerative histograms, wavelet synopses, GK quantiles, exact buffers --
is driven the same way: feed stream points, occasionally bring the
synopsis up to date, answer queries from it.  :class:`Maintainer` is that
contract, stated once:

* ``append(value)`` / ``extend(values)`` -- ingestion.  ``extend`` is the
  batched fast path: adapters forward whole numpy batches to vectorized
  backend ingestion where the backend allows, amortizing per-point Python
  overhead across the batch.
* ``maintain()`` -- bring the synopsis up to date (a rebuild for the
  fixed-window builder, a recomputation for the per-slide wavelet
  baseline, a no-op for always-fresh structures).
* ``synopsis()`` -- the current queryable summary.
* ``stats()`` -- a :class:`MaintainerStats` snapshot unifying the
  ``RebuildStats``-style telemetry (points, rebuilds, HERROR evaluations,
  search probes, wall time) across backends.
* ``state_dict()`` / ``load_state_dict(state)`` -- durable checkpointing.
  Every adapter serializes its backend through the synopsis's own
  ``to_dict``/``to_state`` snapshot, so a maintainer restored into a
  fresh process continues the stream exactly where the original left
  off; :mod:`repro.service` builds crash recovery on this contract.

Concrete adapters live in :mod:`repro.runtime.adapters`; the string-keyed
factory in :mod:`repro.runtime.registry`; the driving loop in
:mod:`repro.runtime.pipeline`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..core.prefix import as_stream_batch
from .statecodec import flatten_state, unflatten_state

__all__ = ["Maintainer", "MaintainerStats", "UpdateMaintainer"]


@dataclass
class MaintainerStats:
    """Unified telemetry counters of one maintainer.

    ``points``/``batches`` count ingestion, ``maintains`` the explicit
    maintenance calls, ``rebuilds`` the backend rebuilds that actually
    happened (lazy backends skip maintenance when nothing changed).
    ``herror_evaluations`` and ``search_probes`` surface the fixed-window
    builder's Theorem-1 operation counts; backends without that machinery
    leave them at zero.  Wall time is split into ingestion and maintenance
    so cadence experiments can attribute cost.
    """

    points: int = 0
    batches: int = 0
    maintains: int = 0
    rebuilds: int = 0
    herror_evaluations: int = 0
    search_probes: int = 0
    ingest_seconds: float = 0.0
    maintain_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        """Total wall time spent in this maintainer."""
        return self.ingest_seconds + self.maintain_seconds

    def counters(self) -> dict[str, int]:
        """The timing-free counters (the deterministic part of the stats).

        Batched and one-at-a-time ingestion of the same stream at the same
        maintenance positions must agree on these exactly; wall times and
        the batch count naturally differ.
        """
        return {
            "points": self.points,
            "maintains": self.maintains,
            "rebuilds": self.rebuilds,
            "herror_evaluations": self.herror_evaluations,
            "search_probes": self.search_probes,
        }


class Maintainer(ABC):
    """Incrementally maintained synopsis with uniform ingestion and stats.

    Subclasses implement ``_ingest_batch`` (and optionally the cheaper
    ``_ingest_one``), ``_maintain``, ``synopsis`` and, where a raw window
    exists, ``window_values``.  The public verbs wrap those hooks with
    timing and counting so every backend reports comparable telemetry.
    """

    #: Adapters that opt into the binary checkpoint fast path set this
    #: True; the service then snapshots them through
    #: :meth:`state_arrays` (raw numeric sections) instead of JSON.
    supports_state_arrays = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats = MaintainerStats()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, value: float) -> None:
        """Consume one stream point."""
        started = time.perf_counter()
        self._ingest_one(float(value))
        self._stats.ingest_seconds += time.perf_counter() - started
        self._stats.points += 1
        self._stats.batches += 1

    def extend(self, values) -> None:
        """Consume a whole batch of stream points (the fast path)."""
        batch = values if isinstance(values, np.ndarray) else as_stream_batch(values)
        if batch.size == 0:
            return
        started = time.perf_counter()
        self._ingest_batch(batch)
        self._stats.ingest_seconds += time.perf_counter() - started
        self._stats.points += batch.size
        self._stats.batches += 1

    # ------------------------------------------------------------------
    # Maintenance and queries
    # ------------------------------------------------------------------

    def maintain(self) -> None:
        """Bring the synopsis up to date with everything ingested."""
        started = time.perf_counter()
        self._maintain()
        self._stats.maintain_seconds += time.perf_counter() - started
        self._stats.maintains += 1

    @abstractmethod
    def synopsis(self):
        """The current queryable summary."""

    def window_values(self) -> np.ndarray:
        """Raw buffered window (only maintainers that keep one)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not buffer a raw window"
        )

    def stats(self) -> MaintainerStats:
        """A snapshot of the unified telemetry counters."""
        self._refresh_stats()
        return replace(self._stats)

    # ------------------------------------------------------------------
    # Durable checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot sufficient to resume this maintainer.

        The envelope carries the adapter class (so a mismatched restore
        fails loudly), the display name, the telemetry counters, and the
        backend payload produced by :meth:`_state_dict`.
        """
        self._refresh_stats()
        return {
            "type": type(self).__name__,
            "name": self.name,
            "stats": asdict(self._stats),
            "backend": self._state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state captured by :meth:`state_dict` in place.

        The receiving maintainer must be constructed with the same
        parameters as the one that was snapshotted (the registry makes
        that a matter of replaying the spec); the payload then replaces
        its backend state and telemetry wholesale.
        """
        expected = type(self).__name__
        if state.get("type") != expected:
            raise ValueError(
                f"snapshot of {state.get('type')!r} cannot restore a {expected}"
            )
        self._load_state_dict(state["backend"])
        self.name = state.get("name", self.name)
        stats = state.get("stats")
        if stats is not None:
            self._stats = MaintainerStats(**stats)

    def state_arrays(self):
        """:meth:`state_dict` split for binary snapshots.

        Returns ``(skeleton, arrays)`` per
        :func:`repro.runtime.statecodec.flatten_state`: a small JSON
        skeleton plus the state's numeric bulk as contiguous
        float64/int64 arrays.  Restoring through
        :meth:`load_state_arrays` is bit-identical to restoring the
        JSON ``state_dict`` -- the codec round-trip is exact.
        """
        return flatten_state(self.state_dict())

    def load_state_arrays(self, skeleton: dict, arrays) -> None:
        """Restore the state captured by :meth:`state_arrays` in place."""
        self.load_state_dict(unflatten_state(skeleton, arrays))

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _state_dict(self) -> dict:
        """Backend payload of :meth:`state_dict`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    def _load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`_state_dict`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    def _ingest_one(self, value: float) -> None:
        self._ingest_batch(np.asarray([value], dtype=np.float64))

    @abstractmethod
    def _ingest_batch(self, batch: np.ndarray) -> None:
        """Feed a validated 1-D float batch into the backend.

        Exception-safety contract: implementations must validate before
        they mutate -- a raising ``_ingest_batch`` leaves the backend
        exactly as it was.  The service layer's poison-record quarantine
        and crash recovery (:mod:`repro.service`) rely on this to
        attribute a failure to the un-ingested points and to keep the
        replayable arrival counter truthful.
        """

    def _maintain(self) -> None:
        """Backend maintenance; default is a no-op (always-fresh synopses)."""

    def _refresh_stats(self) -> None:
        """Pull backend-specific counters into ``self._stats``."""


class UpdateMaintainer(Maintainer):
    """Maintainer that additionally speaks the turnstile update model.

    ``update(key, delta)`` adjusts the frequency of a non-negative
    integer key by a signed amount; it coexists with ``extend``, which
    keeps carrying float batches (turnstile backends decode the
    signed-unit encoding of :mod:`repro.counting.encoding` there, so
    one ingestion channel serves queues, snapshots, and shard frames
    unchanged).  ``points`` advances by ``|delta|`` -- one unit update
    per frequency unit, mirroring what the same change costs when it
    travels encoded through ``extend``.
    """

    def update(self, key: int, delta: int) -> None:
        """Apply ``f[key] += delta`` (``delta`` may be negative)."""
        delta = int(delta)
        if delta == 0:
            return
        started = time.perf_counter()
        self._update(int(key), delta)
        self._stats.ingest_seconds += time.perf_counter() - started
        self._stats.points += abs(delta)
        self._stats.batches += 1

    @abstractmethod
    def _update(self, key: int, delta: int) -> None:
        """Apply one validated turnstile update to the backend.

        Same exception-safety contract as ``_ingest_batch``: validate
        before mutating.
        """
