"""Split a ``state_dict`` into a JSON skeleton plus raw numeric arrays.

Maintainer state is dominated by long numeric lists -- window buffers,
GK tuple triples, histogram bucket tables -- serialized as JSON text at
~30 bytes per number.  :func:`flatten_state` walks a ``state_dict`` and
pulls those lists out as contiguous little-endian ``float64``/``int64``
numpy arrays, leaving a small JSON-serializable *skeleton* behind with
placeholder nodes pointing at the extracted arrays.  The binary snapshot
writer (:mod:`repro.service.snapshot`) stores the skeleton as a short
JSON header and the arrays as raw sections -- 8 bytes per number,
zero-copy on read.

:func:`unflatten_state` is the exact inverse: placeholders are replaced
with ``array.tolist()`` output, so the restored structure is the same
Python object tree JSON round-tripping would have produced (Python
floats and ints round-trip bit-identically through float64/int64).
Anything the codec cannot represent exactly -- short lists, ragged
tables, mixed int/float columns, strings -- simply stays in the
skeleton; the split is lossless by construction.

Two list shapes are extracted:

* homogeneous 1-D: every element the same numeric type (``float`` or
  in-range ``int``; ``bool`` is excluded), at least :data:`MIN_EXTRACT`
  elements;
* rectangular 2-D with per-column homogeneous types (GK's
  ``[[value, g, delta], ...]`` triples: one float column, two int
  columns) -- stored column-wise as one array per column.
"""

from __future__ import annotations

import numpy as np

__all__ = ["flatten_state", "unflatten_state", "MIN_EXTRACT"]

#: Shorter lists stay in the JSON skeleton; extracting them would cost
#: more placeholder text than the raw section saves.
MIN_EXTRACT = 4

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Placeholder keys; a real state dict must not use them.
_ARRAY_KEY = "__nd__"
_COLUMNS_KEY = "__ndcols__"
_RESERVED = (_ARRAY_KEY, _COLUMNS_KEY)

_DTYPES = {"f8": np.dtype("<f8"), "i8": np.dtype("<i8")}


def _scalar_code(value) -> str | None:
    """``"f8"`` / ``"i8"`` for exactly representable scalars, else None."""
    kind = type(value)
    if kind is float:
        return "f8"
    if kind is int and _INT64_MIN <= value <= _INT64_MAX:
        return "i8"
    return None


def _column_code(values, column: int) -> str | None:
    """Uniform scalar code of one column of a rectangular 2-D list."""
    code = _scalar_code(values[0][column])
    if code is None:
        return None
    for row in values:
        if _scalar_code(row[column]) != code:
            return None
    return code


def _list_code(values) -> str | None:
    """Uniform scalar code of a flat list, or None if not extractable."""
    code = _scalar_code(values[0])
    if code is None:
        return None
    for value in values:
        if _scalar_code(value) != code:
            return None
    return code


def _rectangular(values) -> int:
    """Common row length of a 2-D list of lists, or -1 if ragged/not 2-D."""
    first = values[0]
    if type(first) is not list or not first:
        return -1
    width = len(first)
    for row in values:
        if type(row) is not list or len(row) != width:
            return -1
    return width


def _flatten(node, arrays: list[np.ndarray]):
    if isinstance(node, dict):
        for key in _RESERVED:
            if key in node:
                raise ValueError(
                    f"state dict uses reserved codec key {key!r}"
                )
        return {key: _flatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        if len(node) >= MIN_EXTRACT:
            code = _list_code(node)
            if code is not None:
                arrays.append(np.asarray(node, dtype=_DTYPES[code]))
                return {_ARRAY_KEY: len(arrays) - 1, "dt": code}
            width = _rectangular(node)
            if width > 0:
                codes = [_column_code(node, c) for c in range(width)]
                if all(code is not None for code in codes):
                    indices = []
                    for column, code in enumerate(codes):
                        arrays.append(
                            np.asarray(
                                [row[column] for row in node],
                                dtype=_DTYPES[code],
                            )
                        )
                        indices.append(len(arrays) - 1)
                    return {_COLUMNS_KEY: indices, "dts": codes}
        return [_flatten(value, arrays) for value in node]
    return node


def _unflatten(node, arrays):
    if isinstance(node, dict):
        if _ARRAY_KEY in node:
            return arrays[node[_ARRAY_KEY]].tolist()
        if _COLUMNS_KEY in node:
            columns = [arrays[index].tolist() for index in node[_COLUMNS_KEY]]
            return [list(row) for row in zip(*columns)]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


def flatten_state(state: dict) -> tuple[dict, list[np.ndarray]]:
    """Split ``state`` into a JSON skeleton and extracted numeric arrays.

    Returns ``(skeleton, arrays)``: placeholder dicts in the skeleton
    reference ``arrays`` by index.  Raises ``ValueError`` if the state
    collides with the reserved placeholder keys.
    """
    arrays: list[np.ndarray] = []
    return _flatten(state, arrays), arrays


def unflatten_state(skeleton: dict, arrays) -> dict:
    """Exact inverse of :func:`flatten_state`.

    ``arrays`` may be any indexable of numpy arrays (as produced by the
    flattener or read back from a binary snapshot's sections).
    """
    return _unflatten(skeleton, arrays)
