"""String-keyed maintainer registry.

Benchmarks and engines select synopsis backends by configuration instead
of imports::

    from repro.runtime import make_maintainer

    maintainer = make_maintainer(
        "fixed_window", window_size=1024, num_buckets=16, epsilon=0.1
    )

New backends register with :func:`register_maintainer`, either as a
decorator on a :class:`~repro.runtime.maintainer.Maintainer` subclass or
with an explicit factory callable.
"""

from __future__ import annotations

from typing import Callable

from .adapters import (
    AgglomerativeMaintainer,
    DynamicWaveletMaintainer,
    EquiDepthMaintainer,
    ExactBufferMaintainer,
    FixedWindowMaintainer,
    GKQuantileMaintainer,
    ReservoirMaintainer,
    WaveletWindowMaintainer,
)
from .maintainer import Maintainer

__all__ = ["register_maintainer", "make_maintainer", "available_maintainers"]

_REGISTRY: dict[str, Callable[..., Maintainer]] = {}


def register_maintainer(name: str, factory: Callable[..., Maintainer] | None = None):
    """Register a maintainer factory under ``name``.

    Usable directly (``register_maintainer("exact", ExactBufferMaintainer)``)
    or as a class decorator.  Re-registering a taken name is an error;
    registries that silently overwrite hide configuration typos.
    """
    if not name or not name.replace("_", "").isalnum():
        raise ValueError(f"invalid maintainer name {name!r}")

    def _register(factory: Callable[..., Maintainer]):
        if name in _REGISTRY:
            raise ValueError(f"maintainer {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    if factory is None:
        return _register
    return _register(factory)


def make_maintainer(name: str, /, **kwargs) -> Maintainer:
    """Instantiate the maintainer registered under ``name``.

    Keyword arguments are forwarded to the backend's constructor, so a
    config dict maps straight onto a maintainer:
    ``make_maintainer(spec["backend"], **spec["params"])``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"no maintainer registered under {name!r}; available: {known}"
        ) from None
    maintainer = factory(**kwargs)
    if not isinstance(maintainer, Maintainer):
        raise TypeError(
            f"factory for {name!r} returned {type(maintainer).__name__}, "
            "not a Maintainer"
        )
    return maintainer


def available_maintainers() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def _eh_count_factory(**kwargs) -> Maintainer:
    # Imported lazily: repro.counting depends on repro.runtime.maintainer,
    # so a module-level import here would be circular.
    from ..counting.adapters import EHCountMaintainer

    return EHCountMaintainer(**kwargs)


def _cr_precis_factory(**kwargs) -> Maintainer:
    from ..counting.adapters import CRPrecisMaintainer

    return CRPrecisMaintainer(**kwargs)


register_maintainer("fixed_window", FixedWindowMaintainer)
register_maintainer("agglomerative", AgglomerativeMaintainer)
register_maintainer("wavelet", WaveletWindowMaintainer)
register_maintainer("dynamic_wavelet", DynamicWaveletMaintainer)
register_maintainer("gk_quantiles", GKQuantileMaintainer)
register_maintainer("equi_depth", EquiDepthMaintainer)
register_maintainer("reservoir", ReservoirMaintainer)
register_maintainer("exact", ExactBufferMaintainer)
register_maintainer("eh_count", _eh_count_factory)
register_maintainer("cr_precis", _cr_precis_factory)
