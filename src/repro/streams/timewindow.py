"""Time-based sliding windows ("the latest T seconds of data produced").

The paper's fixed-window model counts points; its prose also frames the
window in time ("say over the latest T seconds", section 1).  When
arrivals are timestamped and irregular, the window length in *points*
varies, so the count-based builder does not apply directly.
:class:`TimeWindowHistogram` keeps the timestamped buffer and refreshes
an epsilon-approximate histogram of the in-age points with the one-shot
Problem-2 construction -- ``O((m B^2/eps) log m)`` per refresh for the m
points currently in the window, amortized by a refresh cadence.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.approx import approximate_histogram
from ..core.bucket import Histogram

__all__ = ["TimeWindowHistogram"]


class TimeWindowHistogram:
    """Histogram of the points whose timestamps fall in the last ``max_age``.

    Parameters
    ----------
    max_age:
        Window length in time units; points older than
        ``now - max_age`` are evicted (half-open: a point exactly
        ``max_age`` old is dropped).
    num_buckets, epsilon:
        Synopsis parameters (Problem-2 guarantee per refresh).
    max_points:
        Safety cap on buffered points (oldest dropped beyond it).
    """

    def __init__(
        self,
        max_age: float,
        num_buckets: int,
        epsilon: float = 0.1,
        max_points: int = 100_000,
    ) -> None:
        if max_age <= 0:
            raise ValueError("max_age must be positive")
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.max_age = float(max_age)
        self.num_buckets = num_buckets
        self.epsilon = epsilon
        self.max_points = max_points
        self._buffer: deque[tuple[float, float]] = deque()
        self._last_timestamp: float | None = None
        self._cached: Histogram | None = None

    def __len__(self) -> int:
        """Points currently inside the window."""
        return len(self._buffer)

    def append(self, timestamp: float, value: float) -> None:
        """Consume one timestamped point (timestamps must not decrease)."""
        timestamp = float(timestamp)
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ValueError(
                f"timestamps must be non-decreasing "
                f"({timestamp} after {self._last_timestamp})"
            )
        self._last_timestamp = timestamp
        self._buffer.append((timestamp, float(value)))
        self._evict(timestamp)
        self._cached = None

    def advance(self, timestamp: float) -> None:
        """Move time forward without a new point (pure eviction)."""
        timestamp = float(timestamp)
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ValueError("time cannot move backwards")
        self._last_timestamp = timestamp
        evicted = self._evict(timestamp)
        if evicted:
            self._cached = None

    def _evict(self, now: float) -> int:
        horizon = now - self.max_age
        evicted = 0
        while self._buffer and self._buffer[0][0] <= horizon:
            self._buffer.popleft()
            evicted += 1
        while len(self._buffer) > self.max_points:
            self._buffer.popleft()
            evicted += 1
        return evicted

    def window_values(self) -> np.ndarray:
        """Values currently in the window, oldest first."""
        return np.asarray([value for _, value in self._buffer], dtype=np.float64)

    def window_timestamps(self) -> np.ndarray:
        return np.asarray([stamp for stamp, _ in self._buffer], dtype=np.float64)

    def histogram(self) -> Histogram:
        """(1 + epsilon)-approximate histogram of the in-age points.

        Refreshed lazily and cached until the window contents change.
        """
        if not self._buffer:
            raise ValueError("the window is empty")
        if self._cached is None:
            self._cached = approximate_histogram(
                self.window_values(), self.num_buckets, self.epsilon
            )
        return self._cached
