"""Stream source abstractions.

The paper models a data stream as an ordered sequence of bounded integers
read once, in order (section 3).  A :class:`StreamSource` is any iterable
of floats; this module adds small adapters for replaying finite arrays,
limiting infinite generators, and batching arrivals (section 3, footnote 2
allows batched arrivals within the same framework).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol

import numpy as np

__all__ = ["StreamSource", "ArraySource", "take", "batched"]


class StreamSource(Protocol):
    """Anything that yields stream points in arrival order."""

    def __iter__(self) -> Iterator[float]: ...


class ArraySource:
    """Replay a finite array as a stream (optionally repeated)."""

    def __init__(self, values, repeat: int = 1) -> None:
        self._values = np.asarray(values, dtype=np.float64)
        if self._values.ndim != 1:
            raise ValueError("stream values must be one-dimensional")
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        self._repeat = repeat

    def __len__(self) -> int:
        return self._values.size * self._repeat

    def __iter__(self) -> Iterator[float]:
        for _ in range(self._repeat):
            yield from self._values.tolist()


def take(source: Iterable[float], count: int) -> np.ndarray:
    """Materialize the first ``count`` points of a stream."""
    if count < 0:
        raise ValueError("count must be non-negative")
    out = np.empty(count, dtype=np.float64)
    iterator = iter(source)
    for i in range(count):
        try:
            out[i] = next(iterator)
        except StopIteration:
            raise ValueError(f"stream ended after {i} points, needed {count}") from None
    return out


def batched(source: Iterable[float], batch_size: int) -> Iterator[np.ndarray]:
    """Group stream points into fixed-size arrival batches.

    The final batch may be shorter if the stream is finite.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: list[float] = []
    for value in source:
        batch.append(float(value))
        if len(batch) == batch_size:
            yield np.asarray(batch)
            batch = []
    if batch:
        yield np.asarray(batch)
