"""Data-stream substrate: sources, synthetic generators, sliding windows."""

from .source import ArraySource, StreamSource, batched, take
from .synthetic import (
    bursty_traffic,
    clickstream_bytes,
    fault_sequence,
    diurnal_utilization,
    gbm_prices,
    level_shifts,
    mixture_stream,
    random_walk,
    zipf_frequencies,
)
from .timewindow import TimeWindowHistogram
from .window import SlidingWindow

__all__ = [
    "ArraySource",
    "SlidingWindow",
    "TimeWindowHistogram",
    "StreamSource",
    "batched",
    "bursty_traffic",
    "clickstream_bytes",
    "fault_sequence",
    "diurnal_utilization",
    "gbm_prices",
    "level_shifts",
    "mixture_stream",
    "random_walk",
    "take",
    "zipf_frequencies",
]
