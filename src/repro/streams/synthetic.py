"""Synthetic stream generators.

The paper's motivating workloads are network-element measurement streams,
financial tick sequences and web-server click streams (section 1).  Real
AT&T traces are not available, so these generators produce seeded,
deterministic streams covering the same qualitative regimes: piecewise
smooth levels, diurnal periodicity, heavy-tailed bursts, random-walk
drift, and categorical skew.

All generators yield non-negative values quantized to integers (the paper
assumes integer points from a bounded range) unless ``quantize=False``.

Every generator's ``seed`` parameter also accepts an existing
``numpy.random.Generator``, which is used as-is (not re-wrapped), so one
explicitly constructed Generator can drive an entire multi-stream
experiment or certification run reproducibly from a single seed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "random_walk",
    "level_shifts",
    "bursty_traffic",
    "diurnal_utilization",
    "zipf_frequencies",
    "gbm_prices",
    "fault_sequence",
    "clickstream_bytes",
    "mixture_stream",
]


def _rng(seed) -> np.random.Generator:
    """Build a Generator from ``seed``, passing an existing one through.

    The pass-through is explicit (not delegated to ``default_rng``'s
    own behavior) because shared-Generator reproducibility is part of
    this module's contract, not an implementation accident.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _emit(value: float, low: float, high: float, quantize: bool) -> float:
    clipped = min(max(value, low), high)
    return float(round(clipped)) if quantize else float(clipped)


def random_walk(
    seed=0,
    start: float = 500.0,
    step: float = 5.0,
    low: float = 0.0,
    high: float = 1000.0,
    quantize: bool = True,
) -> Iterator[float]:
    """Reflected integer random walk in ``[low, high]``."""
    rng = _rng(seed)
    value = start
    while True:
        value += rng.normal(0.0, step)
        value = min(max(value, low), high)
        yield _emit(value, low, high, quantize)


def level_shifts(
    seed=0,
    levels: tuple[float, float] = (50.0, 800.0),
    dwell: int = 100,
    noise: float = 5.0,
    quantize: bool = True,
) -> Iterator[float]:
    """Piecewise-constant stream with abrupt level changes.

    The geometric dwell time makes segment boundaries unpredictable; this
    is the regime where V-optimal histograms shine (few buckets capture
    long flat stretches exactly).
    """
    if dwell < 1:
        raise ValueError("dwell must be >= 1")
    rng = _rng(seed)
    low_level, high_level = min(levels), max(levels)
    while True:
        level = rng.uniform(low_level, high_level)
        length = 1 + rng.geometric(1.0 / dwell)
        for _ in range(length):
            yield _emit(level + rng.normal(0.0, noise), 0.0, 2 * high_level, quantize)


def bursty_traffic(
    seed=0,
    base: float = 100.0,
    burst_rate: float = 0.02,
    burst_scale: float = 2000.0,
    noise: float = 15.0,
    quantize: bool = True,
) -> Iterator[float]:
    """Router-like byte counts: low base load plus Pareto-sized bursts."""
    rng = _rng(seed)
    burst_remaining = 0
    burst_height = 0.0
    while True:
        if burst_remaining == 0 and rng.random() < burst_rate:
            burst_remaining = int(rng.integers(3, 25))
            burst_height = burst_scale * (rng.pareto(1.5) + 1.0)
        level = base + (burst_height if burst_remaining > 0 else 0.0)
        if burst_remaining > 0:
            burst_remaining -= 1
        yield _emit(level + rng.normal(0.0, noise), 0.0, 1e7, quantize)


def diurnal_utilization(
    seed=0,
    period: int = 288,
    amplitude: float = 400.0,
    base: float = 500.0,
    noise: float = 20.0,
    quantize: bool = True,
) -> Iterator[float]:
    """Service-utilization curve with a daily cycle plus AR(1) noise."""
    if period < 2:
        raise ValueError("period must be >= 2")
    rng = _rng(seed)
    ar = 0.0
    t = 0
    while True:
        ar = 0.9 * ar + rng.normal(0.0, noise)
        cycle = amplitude * np.sin(2.0 * np.pi * t / period)
        yield _emit(base + cycle + ar, 0.0, base + amplitude + 50 * noise, quantize)
        t += 1


def zipf_frequencies(
    seed=0, alpha: float = 1.3, domain: int = 1000, quantize: bool = True
) -> Iterator[float]:
    """Skewed categorical values (Zipf ranks), the warehouse workload."""
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 for a proper Zipf law")
    rng = _rng(seed)
    while True:
        value = rng.zipf(alpha)
        yield _emit(min(value, domain), 0.0, domain, quantize)


def gbm_prices(
    seed=0,
    start: float = 100.0,
    drift: float = 0.0001,
    volatility: float = 0.01,
    quantize: bool = False,
) -> Iterator[float]:
    """Geometric-Brownian stock-like tick sequence."""
    rng = _rng(seed)
    price = start
    while True:
        price *= float(np.exp(drift - volatility**2 / 2 + volatility * rng.normal()))
        yield _emit(price, 0.0, 1e9, quantize)


def fault_sequence(
    seed=0,
    base_rate: float = 0.5,
    storm_rate: float = 0.005,
    storm_intensity: float = 25.0,
    quantize: bool = True,
) -> Iterator[float]:
    """Network fault counts per interval: sparse background plus storms.

    The paper's intro lists "fault sequences recording various types of
    network faults" among the streams operators must monitor.  Faults are
    Poisson at a low background rate; occasional correlated storms raise
    the rate by orders of magnitude for a short burst.
    """
    if base_rate < 0 or storm_intensity < 0:
        raise ValueError("rates must be non-negative")
    rng = _rng(seed)
    storm_remaining = 0
    while True:
        if storm_remaining == 0 and rng.random() < storm_rate:
            storm_remaining = int(rng.integers(10, 60))
        rate = base_rate + (storm_intensity if storm_remaining > 0 else 0.0)
        if storm_remaining > 0:
            storm_remaining -= 1
        yield _emit(float(rng.poisson(rate)), 0.0, 1e6, quantize)


def clickstream_bytes(
    seed=0,
    session_rate: float = 0.08,
    page_mean: float = 9.5,
    page_sigma: float = 1.2,
    quantize: bool = True,
) -> Iterator[float]:
    """Web-server bytes retrieved per interval (a click stream).

    The paper's intro: "a click stream sequence in terms of number of
    bytes retrieved".  Sessions arrive at random; each interval's volume
    is the sum of log-normally sized page fetches of the active sessions,
    producing a heavy-tailed, autocorrelated byte sequence.
    """
    if not (0.0 <= session_rate <= 1.0):
        raise ValueError("session_rate must be in [0, 1]")
    rng = _rng(seed)
    active: list[int] = []  # remaining pages per active session
    while True:
        if rng.random() < session_rate:
            active.append(int(rng.integers(2, 30)))
        volume = 0.0
        still_active = []
        for remaining in active:
            volume += float(rng.lognormal(page_mean, page_sigma))
            if remaining > 1:
                still_active.append(remaining - 1)
        active = still_active
        yield _emit(volume, 0.0, 1e12, quantize)


def mixture_stream(seed=0, quantize: bool = True) -> Iterator[float]:
    """Rotate through regimes to exercise adaptation: walk, shifts, bursts."""
    rng = _rng(seed)
    sources = [
        random_walk(seed=rng.integers(2**31), quantize=quantize),
        level_shifts(seed=rng.integers(2**31), quantize=quantize),
        bursty_traffic(seed=rng.integers(2**31), quantize=quantize),
    ]
    while True:
        source = sources[int(rng.integers(len(sources)))]
        for _ in range(int(rng.integers(50, 400))):
            yield next(source)
