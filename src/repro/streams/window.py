"""Sliding-window buffer (the paper's cyclic buffer M, section 3).

A :class:`SlidingWindow` holds the last ``capacity`` stream points: when
point ``i >= n`` arrives, the temporally oldest point is evicted and the
new point takes its slot, so the buffer acts as a sliding window of length
``n`` over the stream.  Successive window states share ``n - 1`` points.
"""

from __future__ import annotations

import numpy as np

from ..core.prefix import as_stream_batch

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """Cyclic buffer over the most recent ``capacity`` stream points."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._ring = np.zeros(capacity, dtype=np.float64)
        self._total_seen = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total_seen(self) -> int:
        """Total number of points appended since construction."""
        return self._total_seen

    def __len__(self) -> int:
        """Current number of buffered points (≤ capacity)."""
        return min(self._total_seen, self._capacity)

    @property
    def is_full(self) -> bool:
        return self._total_seen >= self._capacity

    def append(self, value: float) -> float | None:
        """Add a point; return the evicted point if the buffer was full."""
        slot = self._total_seen % self._capacity
        evicted = float(self._ring[slot]) if self.is_full else None
        self._ring[slot] = float(value)
        self._total_seen += 1
        return evicted

    def extend(self, values) -> None:
        """Append a whole batch (vectorized; evicted points are dropped).

        Only the last ``capacity`` points of the batch can survive, so the
        ring is written with one fancy-index assignment over that tail.
        """
        array = as_stream_batch(values)
        tail = array[-self._capacity :]
        skipped = array.size - tail.size
        slots = (self._total_seen + skipped + np.arange(tail.size)) % self._capacity
        self._ring[slots] = tail
        self._total_seen += array.size

    def __getitem__(self, index: int) -> float:
        """Window-relative access: 0 is the oldest buffered point."""
        length = len(self)
        if index < 0:
            index += length
        if not (0 <= index < length):
            raise IndexError(f"index {index} out of range for window length {length}")
        oldest = self._total_seen - length
        return float(self._ring[(oldest + index) % self._capacity])

    def values(self) -> np.ndarray:
        """Window contents oldest-first (a fresh array)."""
        length = len(self)
        if length < self._capacity:
            return self._ring[:length].copy()
        pivot = self._total_seen % self._capacity
        return np.concatenate((self._ring[pivot:], self._ring[:pivot]))

    @classmethod
    def restore(cls, capacity: int, values, total_seen: int) -> "SlidingWindow":
        """Rebuild a window holding ``values`` after ``total_seen`` points.

        Mirrors :meth:`SlidingPrefixSums.restore`: only the retained
        window matters, so restoration is O(len(values)) no matter how
        long the original stream was.
        """
        array = as_stream_batch(values)
        if array.size > capacity:
            raise ValueError("window longer than capacity")
        if total_seen < array.size:
            raise ValueError("total_seen cannot be below the window length")
        if total_seen > array.size and array.size < capacity:
            raise ValueError("a partial window implies total_seen == window length")
        window = cls(capacity)
        start = total_seen - array.size
        slots = (start + np.arange(array.size)) % capacity
        window._ring[slots] = array
        window._total_seen = total_seen
        return window
