"""repro: streaming V-optimal histograms for querying and estimation.

A full reproduction of Guha & Koudas, *Approximating a Data Stream for
Querying and Estimation* (ICDE 2002): the fixed-window and agglomerative
streaming histogram algorithms with their (1 + eps) guarantees, the exact
V-optimal DP they approximate, the wavelet / APCA / heuristic baselines
they are evaluated against, and the stream, query, similarity-search and
warehouse substrates of the paper's experiments.

Quick start::

    from repro import FixedWindowHistogramBuilder

    builder = FixedWindowHistogramBuilder(window_size=1024, num_buckets=16,
                                          epsilon=0.1)
    for value in stream:
        builder.append(value)
    histogram = builder.histogram()        # synopsis of the last 1024 points
    estimate = histogram.range_sum(100, 499)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction results.
"""

from .core import (
    AgglomerativeHistogramBuilder,
    Bucket,
    FixedWindowHistogramBuilder,
    Histogram,
    PrefixSums,
    SlidingPrefixSums,
    approximate_histogram,
    minimax_histogram,
    optimal_error,
    optimal_histogram,
)
from .heuristics import (
    equal_depth_histogram,
    equal_width_histogram,
    maxdiff_histogram,
)
from .query import (
    ContinuousQueryEngine,
    HistogramMaintainer,
    StandingQuery,
    PointQuery,
    RandomRangeWorkload,
    RangeQuery,
    StreamQueryEngine,
    WaveletMaintainer,
    measure_accuracy,
)
from .mining import HistogramChangeDetector, cluster_series
from .runtime import (
    Maintainer,
    MaintainerStats,
    StreamPipeline,
    available_maintainers,
    make_maintainer,
    register_maintainer,
)
from .service import (
    BackpressureError,
    FaultInjector,
    RestartPolicy,
    StreamService,
    StreamSpec,
)
from .sketches import GKQuantileSummary, ReservoirSample
from .streams import SlidingWindow
from .similarity import SeriesIndex, SubsequenceIndex, VOptimalReducer, apca
from .warehouse import (
    AttributeSummary,
    Relation,
    StreamingEquiDepthSummary,
    StreamingWaveletSummary,
)
from .wavelets import DynamicWaveletHistogram, WaveletSynopsis

__version__ = "1.0.0"

__all__ = [
    "AgglomerativeHistogramBuilder",
    "AttributeSummary",
    "BackpressureError",
    "Bucket",
    "ContinuousQueryEngine",
    "FaultInjector",
    "FixedWindowHistogramBuilder",
    "DynamicWaveletHistogram",
    "GKQuantileSummary",
    "Histogram",
    "HistogramChangeDetector",
    "HistogramMaintainer",
    "Maintainer",
    "MaintainerStats",
    "PointQuery",
    "PrefixSums",
    "RandomRangeWorkload",
    "RangeQuery",
    "Relation",
    "ReservoirSample",
    "RestartPolicy",
    "SeriesIndex",
    "SlidingPrefixSums",
    "SlidingWindow",
    "StandingQuery",
    "StreamingEquiDepthSummary",
    "StreamingWaveletSummary",
    "StreamPipeline",
    "StreamQueryEngine",
    "StreamService",
    "StreamSpec",
    "SubsequenceIndex",
    "VOptimalReducer",
    "WaveletMaintainer",
    "WaveletSynopsis",
    "apca",
    "approximate_histogram",
    "available_maintainers",
    "cluster_series",
    "make_maintainer",
    "equal_depth_histogram",
    "equal_width_histogram",
    "maxdiff_histogram",
    "measure_accuracy",
    "minimax_histogram",
    "optimal_error",
    "optimal_histogram",
    "register_maintainer",
    "__version__",
]
