"""Change detection on streams via fixed-window histograms.

The paper closes (section 6) by noting that the incremental histogram
algorithms "make them applicable to mining problems in data streams".
This module implements the most direct such application: distribution
**change detection**.  Two fixed-length windows slide over the stream --
a *reference* window ending ``lag`` points ago and the *current* window
-- each summarized by the paper's fixed-window histogram builder.  When
the distance between the two synopses spikes above an adaptive threshold,
a change is reported.

Both windows are :mod:`repro.runtime` maintainers (the reference wrapped
in a :class:`~repro.runtime.adapters.DelayedMaintainer` that lags the
stream), driven by one :class:`~repro.runtime.pipeline.StreamPipeline`
whose checkpoint callback scores the synopsis distance.

Comparing B-bucket synopses instead of raw windows keeps the detector's
per-checkpoint cost independent of the window length and inherits the
(1 + eps) fidelity guarantee of the synopses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime import DelayedMaintainer, StreamPipeline, make_maintainer
from .distances import histogram_l2

__all__ = ["ChangeEvent", "HistogramChangeDetector"]


@dataclass(frozen=True)
class ChangeEvent:
    """A detected distribution change.

    ``position`` is the stream index (count of points seen) at which the
    change fired; ``score`` is the synopsis distance, ``threshold`` the
    adaptive bound it exceeded.
    """

    position: int
    score: float
    threshold: float


class HistogramChangeDetector:
    """Sliding two-window change detector over histogram synopses.

    Parameters
    ----------
    window_size:
        Length of both the reference and current windows.
    lag:
        Offset between them; the reference window ends ``lag`` points
        before the current one.  Defaults to ``window_size`` (disjoint
        windows).
    num_buckets, epsilon:
        Synopsis parameters of the fixed-window builders.
    sensitivity:
        Multiplier on the running median score used as the adaptive
        threshold; lower fires more eagerly.
    check_every:
        Checkpoint cadence in arrivals.
    cooldown:
        Minimum arrivals between two reported events.
    """

    def __init__(
        self,
        window_size: int,
        num_buckets: int = 8,
        epsilon: float = 0.25,
        lag: int | None = None,
        sensitivity: float = 4.0,
        check_every: int = 16,
        cooldown: int | None = None,
        history: int = 64,
    ) -> None:
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.window_size = window_size
        self.lag = window_size if lag is None else lag
        if self.lag < 1:
            raise ValueError("lag must be >= 1")
        self.sensitivity = sensitivity
        self.check_every = check_every
        self.cooldown = window_size if cooldown is None else cooldown

        def _builder(name: str):
            return make_maintainer(
                "fixed_window",
                window_size=window_size,
                num_buckets=num_buckets,
                epsilon=epsilon,
                name=name,
            )

        self._current = _builder("current")
        # The reference maintainer sees the stream delayed by `lag` points.
        self._reference = DelayedMaintainer(_builder("reference"), lag=self.lag)
        self._pipeline = StreamPipeline(
            [self._current, self._reference],
            maintain_every=None,  # lazy builders rebuild at checkpoints
            checkpoint_every=check_every,
            warmup=window_size + self.lag,
            on_checkpoint=self._checkpoint,
        )
        self._scores: list[float] = []
        self._history = history
        self._last_event = -(10**18)
        self._fired_now: ChangeEvent | None = None
        self.events: list[ChangeEvent] = []

    def _threshold(self) -> float:
        if not self._scores:
            return float("inf")
        return self.sensitivity * float(np.median(self._scores)) + 1e-9

    def _checkpoint(self, position: int, pipeline: StreamPipeline) -> None:
        score = histogram_l2(self._current.synopsis(), self._reference.synopsis())
        threshold = self._threshold()
        if (
            score > threshold
            and position - self._last_event >= self.cooldown
            and len(self._scores) >= 4
        ):
            event = ChangeEvent(position, score, threshold)
            self.events.append(event)
            self._fired_now = event
            self._last_event = position
        # Feed the baseline afterwards so the spike does not mask itself.
        self._scores.append(score)
        if len(self._scores) > self._history:
            self._scores.pop(0)

    def update(self, value: float) -> ChangeEvent | None:
        """Consume one point; return a :class:`ChangeEvent` if one fired."""
        self._fired_now = None
        self._pipeline.append(value)
        return self._fired_now

    def run(self, stream) -> list[ChangeEvent]:
        """Consume a whole stream (batched); return every event fired."""
        self._fired_now = None
        self._pipeline.run(stream)
        return list(self.events)
