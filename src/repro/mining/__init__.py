"""Stream-mining applications of the histogram synopses (paper section 6).

The paper's closing section points at data-mining uses of the incremental
histograms; this package implements the two most direct ones:
distribution change detection over a stream and clustering collections of
series by their histogram features.
"""

from .changepoint import ChangeEvent, HistogramChangeDetector
from .clustering import ClusteringResult, cluster_series, histogram_features
from .distances import histogram_l1, histogram_l2, merged_breakpoints

__all__ = [
    "ChangeEvent",
    "ClusteringResult",
    "HistogramChangeDetector",
    "cluster_series",
    "histogram_features",
    "histogram_l1",
    "histogram_l2",
    "merged_breakpoints",
]
