"""Distances between histogram synopses.

Stream-mining on histogram synopses (the paper's section 6 outlook) needs
a way to compare two histograms of equal-length windows.  Because every
synopsis in this library is a piecewise-constant function over positions,
the natural distances are function-space norms of the reconstructions --
computable directly from the bucket structure in O(B1 + B2) without
materializing the windows.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Histogram

__all__ = ["histogram_l2", "histogram_l1", "merged_breakpoints"]


def merged_breakpoints(first: Histogram, second: Histogram) -> list[tuple[int, int, float, float]]:
    """Common refinement of two equal-length histograms.

    Yields ``(start, end, value_first, value_second)`` segments on which
    both reconstructions are constant.
    """
    if len(first) != len(second):
        raise ValueError(
            f"histogram lengths differ: {len(first)} vs {len(second)}"
        )
    segments = []
    i = j = 0
    start = 0
    buckets_a = first.buckets
    buckets_b = second.buckets
    while start < len(first):
        end = min(buckets_a[i].end, buckets_b[j].end)
        segments.append((start, end, buckets_a[i].value, buckets_b[j].value))
        if buckets_a[i].end == end:
            i += 1
        if buckets_b[j].end == end:
            j += 1
        start = end + 1
    return segments


def histogram_l2(first: Histogram, second: Histogram) -> float:
    """L2 distance between the two piecewise-constant reconstructions."""
    total = 0.0
    for start, end, value_a, value_b in merged_breakpoints(first, second):
        gap = value_a - value_b
        total += (end - start + 1) * gap * gap
    return float(np.sqrt(total))


def histogram_l1(first: Histogram, second: Histogram) -> float:
    """L1 distance between the two piecewise-constant reconstructions."""
    total = 0.0
    for start, end, value_a, value_b in merged_breakpoints(first, second):
        total += (end - start + 1) * abs(value_a - value_b)
    return float(total)
