"""Clustering collections of series by their histogram features.

The paper's outlook (section 6) and its citation of stream clustering
[GMMO00] motivate the second mining application: group series by the
shape of their synopses.  Series are reduced to fixed-dimension feature
vectors (the reconstruction of their B-bucket histogram, resampled to a
common grid) and clustered with seeded k-means.  Because the features
come from (1 + eps)-optimal histograms, two series cluster together
exactly when their dominant piecewise-constant structure matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..similarity.features import Reducer, VOptimalReducer

__all__ = ["ClusteringResult", "histogram_features", "cluster_series"]


@dataclass(frozen=True)
class ClusteringResult:
    """Assignments plus the final centroids and inertia."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float

    @property
    def num_clusters(self) -> int:
        return self.centroids.shape[0]


def histogram_features(
    collection, reducer: Reducer | None = None, grid: int = 32
) -> np.ndarray:
    """Feature matrix: each series' histogram reconstruction on a grid.

    Resampling the piecewise-constant reconstruction onto ``grid`` points
    gives every series the same dimensionality regardless of where its
    bucket boundaries fall.
    """
    series_matrix = np.asarray(collection, dtype=np.float64)
    if series_matrix.ndim != 2:
        raise ValueError("collection must be a 2-D array of series")
    if grid < 1:
        raise ValueError("grid must be >= 1")
    reducer = reducer or VOptimalReducer(16, epsilon=0.1)
    length = series_matrix.shape[1]
    positions = np.linspace(0, length - 1, grid).round().astype(int)
    features = np.empty((series_matrix.shape[0], grid))
    for row, series in enumerate(series_matrix):
        dense = reducer.reduce(series).to_array()
        features[row] = dense[positions]
    return features


def _kmeans(features: np.ndarray, k: int, seed: int, iterations: int) -> ClusteringResult:
    rng = np.random.default_rng(seed)
    n = features.shape[0]
    # k-means++ style seeding: spread the initial centroids.
    centroids = [features[int(rng.integers(n))]]
    for _ in range(k - 1):
        distances = np.min(
            [np.sum((features - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = float(distances.sum())
        if total <= 0:
            centroids.append(features[int(rng.integers(n))])
            continue
        draw = rng.random() * total
        centroids.append(features[int(np.searchsorted(np.cumsum(distances), draw))])
    centroid_matrix = np.asarray(centroids)

    labels = np.zeros(n, dtype=np.intp)
    for _ in range(iterations):
        distances = np.stack(
            [np.sum((features - c) ** 2, axis=1) for c in centroid_matrix]
        )
        new_labels = np.argmin(distances, axis=0)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = features[labels == cluster]
            if members.size:
                centroid_matrix[cluster] = members.mean(axis=0)
    inertia = float(
        np.sum((features - centroid_matrix[labels]) ** 2)
    )
    return ClusteringResult(labels, centroid_matrix, inertia)


def cluster_series(
    collection,
    k: int,
    reducer: Reducer | None = None,
    grid: int = 32,
    seed: int = 0,
    iterations: int = 50,
    restarts: int = 4,
) -> ClusteringResult:
    """Cluster a collection of equal-length series into ``k`` groups.

    Runs seeded k-means ``restarts`` times over histogram features and
    keeps the lowest-inertia result.  Deterministic given ``seed``.
    """
    features = histogram_features(collection, reducer, grid)
    if not (1 <= k <= features.shape[0]):
        raise ValueError(f"k must be in [1, {features.shape[0]}]")
    best: ClusteringResult | None = None
    for restart in range(restarts):
        result = _kmeans(features, k, seed + restart, iterations)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
